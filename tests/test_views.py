"""Tests for fanout/level views used by node selection."""

from repro.mig.graph import Mig
from repro.mig.signal import complement, node_of
from repro.mig.views import FanoutView


def build_fig2_like():
    """A is consumed only at the root; B, C immediately."""
    mig = Mig()
    x = [mig.add_pi(f"x{i}") for i in range(6)]
    a = mig.add_maj(x[0], x[1], complement(x[2]))
    b = mig.add_maj(x[1], x[2], x[3])
    c = mig.add_maj(x[3], x[4], x[5])
    d = mig.add_maj(b, c, x[0])
    e = mig.add_maj(c, x[4], complement(x[5]))
    f = mig.add_maj(d, e, x[1])
    g = mig.add_maj(a, f, complement(x[3]))
    mig.add_po(g, "g")
    return mig, dict(a=a, b=b, c=c, d=d, e=e, f=f, g=g)


class TestFanoutView:
    def test_ref_counts(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        assert view.ref_counts[node_of(sigs["c"])] == 2  # d and e
        assert view.ref_counts[node_of(sigs["a"])] == 1  # g only
        assert view.ref_counts[node_of(sigs["g"])] == 1  # the PO

    def test_fanout_lists(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        assert view.fanouts[node_of(sigs["b"])] == (node_of(sigs["d"]),)
        assert sorted(view.fanouts[node_of(sigs["c"])]) == sorted(
            [node_of(sigs["d"]), node_of(sigs["e"])]
        )

    def test_fanout_level_index_blocked_node(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        # A is consumed by G at level 4: long storage duration.
        a_idx = view.fanout_level_index(node_of(sigs["a"]))
        b_idx = view.fanout_level_index(node_of(sigs["b"]))
        assert a_idx > b_idx

    def test_po_nodes_pinned_to_end(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        g_idx = view.fanout_level_index(node_of(sigs["g"]))
        assert g_idx == view.depth + 1

    def test_min_aggregate(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        c_node = node_of(sigs["c"])
        assert view.fanout_level_index(c_node, "min") <= view.fanout_level_index(
            c_node, "max"
        )

    def test_bad_aggregate(self):
        mig, _ = build_fig2_like()
        view = FanoutView(mig)
        try:
            view.fanout_level_index(1, "median")
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_single_fanout_nodes(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        singles = set(view.single_fanout_nodes())
        assert node_of(sigs["a"]) in singles
        assert node_of(sigs["c"]) not in singles

    def test_level_spread_counts_blocked(self):
        mig, sigs = build_fig2_like()
        view = FanoutView(mig)
        spread = view.level_spread()
        assert sum(spread.values()) > 0
        assert max(spread) >= 3  # A's spread: produced L1, consumed L4

    def test_dead_gate_excluded(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        dead = mig.add_maj(a, b, c)
        live = mig.add_maj(a, b, complement(c))
        mig.add_po(live)
        view = FanoutView(mig)
        assert view.ref_counts[node_of(dead)] == 0
        # a and b are used by the live gate only
        assert view.ref_counts[node_of(a)] == 1
