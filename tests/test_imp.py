"""Tests for the IMPLY (material implication) baseline of Section II."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import WriteTrafficStats
from repro.imp.gates import ImpProgram, NandNetlist, OP_FALSE, OP_IMP, mig_to_nand
from repro.imp.simulate import ImpSimulator, verify_imp_program
from repro.imp.synthesize import (
    ImpSynthesizer,
    WorkPoolExhaustedError,
    required_pool_estimate,
    synthesize_imp,
)
from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.mig.simulate import simulate
from .conftest import make_random_mig


class TestNandNetlist:
    def test_evaluate_nand(self):
        net = NandNetlist(num_inputs=2)
        out = net.add_nand(0, 1)
        net.outputs.append(out)
        assert net.evaluate([1, 1]) == [0]
        assert net.evaluate([1, 0]) == [1]

    def test_not_gate(self):
        net = NandNetlist(num_inputs=1)
        net.outputs.append(net.add_not(0))
        assert net.evaluate([0]) == [1]
        assert net.evaluate([1]) == [0]

    def test_depth(self):
        net = NandNetlist(num_inputs=2)
        a = net.add_nand(0, 1)
        b = net.add_not(a)
        net.outputs.append(b)
        assert net.depth() == 2


class TestMigToNand:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_decomposition_equivalent(self, seed):
        mig = make_random_mig(5, 25, seed=seed)
        net = mig_to_nand(mig)
        mask = (1 << 32) - 1
        import random as rnd

        rng = rnd.Random(seed)
        for _ in range(4):
            words = [rng.getrandbits(32) for _ in range(mig.num_pis)]
            assert net.evaluate(words, mask=mask) == simulate(
                mig, words, mask=mask
            )

    def test_complemented_po(self):
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        mig.add_po(complement(mig.add_and(a, b)), "nand")
        net = mig_to_nand(mig)
        assert net.evaluate([1, 1]) == [0]

    def test_constant_po(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(1, "one")
        net = mig_to_nand(mig)
        assert net.evaluate([0]) == [1]
        assert net.evaluate([1]) == [1]

    def test_needs_inputs(self):
        mig = Mig()
        mig.add_po(1, "one")
        with pytest.raises(ValueError):
            mig_to_nand(mig)

    def test_six_nands_per_majority(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.add_maj(a, b, c))
        net = mig_to_nand(mig)
        assert len(net.gates) == 6


class TestUnboundedSynthesis:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_program_verifies(self, seed):
        mig = make_random_mig(5, 25, seed=seed)
        net = mig_to_nand(mig)
        prog = synthesize_imp(net)
        assert verify_imp_program(prog, net)

    def test_nand_is_three_operations(self):
        net = NandNetlist(num_inputs=2)
        net.outputs.append(net.add_nand(0, 1))
        prog = synthesize_imp(net)
        assert prog.num_instructions == 3
        ops = [ins[0] for ins in prog.instructions]
        assert ops == [OP_FALSE, OP_IMP, OP_IMP]

    def test_work_device_takes_all_writes(self):
        """The Section II observation: inputs are never written; the work
        device absorbs every pulse."""
        net = NandNetlist(num_inputs=2)
        net.outputs.append(net.add_nand(0, 1))
        prog = synthesize_imp(net)
        counts = prog.write_counts()
        assert counts[0] == 0 and counts[1] == 0
        assert counts[2] == 3

    def test_dead_gates_skipped(self):
        net = NandNetlist(num_inputs=2)
        net.add_nand(0, 1)  # dead
        net.outputs.append(net.add_nand(1, 0))
        prog = synthesize_imp(net)
        assert prog.num_instructions == 3


class TestBoundedSynthesis:
    def test_small_pool_rejected(self):
        with pytest.raises(ValueError):
            ImpSynthesizer(work_devices=2)

    def test_bounded_verifies(self):
        mig = make_random_mig(5, 20, seed=9)
        net = mig_to_nand(mig)
        k = required_pool_estimate(net)
        prog = synthesize_imp(net, work_devices=k)
        assert verify_imp_program(prog, net)
        assert prog.num_cells == net.num_inputs + k

    def test_rematerialisation_costs_instructions(self):
        mig = make_random_mig(5, 20, seed=9)
        net = mig_to_nand(mig)
        unbounded = synthesize_imp(net)
        k = max(3, required_pool_estimate(net) // 2)
        try:
            bounded = synthesize_imp(net, work_devices=k)
        except WorkPoolExhaustedError:
            pytest.skip("pool too small for this netlist shape")
        assert bounded.num_instructions >= unbounded.num_instructions
        assert verify_imp_program(bounded, net)

    def test_exhaustion_raises(self):
        # a deep chain with a 3-slot pool cannot be scheduled
        net = NandNetlist(num_inputs=2)
        cur = net.add_nand(0, 1)
        side = []
        for _ in range(30):
            nxt = net.add_nand(cur, 1)
            side.append(cur)
            cur = net.add_nand(nxt, cur)
        net.outputs.extend(side[-3:] + [cur])
        with pytest.raises(WorkPoolExhaustedError):
            synthesize_imp(net, work_devices=3)

    def test_write_concentration_on_pool(self):
        """Bounded pools concentrate the whole computation's writes on K
        devices — the paper's argument against two-device schemes."""
        mig = make_random_mig(6, 30, seed=17)
        net = mig_to_nand(mig)
        k = required_pool_estimate(net)
        prog = synthesize_imp(net, work_devices=k)
        counts = prog.write_counts()
        input_writes = sum(counts[: net.num_inputs])
        assert input_writes == 0
        assert sum(counts[net.num_inputs:]) == prog.num_instructions


class TestImpVsRm3:
    def test_imp_concentrates_writes_more_than_plim(self):
        """Qualitative Section II claim: the IMP NAND flow has a worse
        (more concentrated) write distribution than the RM3 flow with
        endurance management."""
        from repro.core.manager import PRESETS, compile_pipeline
        from repro.synth.registry import build_benchmark

        mig = build_benchmark("ctrl", preset="tiny")
        net = mig_to_nand(mig)
        imp_prog = synthesize_imp(net)
        imp_stats = WriteTrafficStats.from_counts(imp_prog.write_counts())
        plim = compile_pipeline(mig, PRESETS["ea-full"])
        assert imp_stats.stdev > plim.stats.stdev
        assert imp_stats.max_writes > plim.stats.max_writes


class TestSimulator:
    def test_false_and_imp_semantics(self):
        sim = ImpSimulator(2)
        prog = ImpProgram(
            instructions=[(OP_FALSE, 1), (OP_IMP, 0, 1)],
            num_cells=2,
            pi_cells=[0],
            po_cells=[1],
        )
        assert sim.run(prog, [1]) == [0]  # ~1 | 0
        sim2 = ImpSimulator(2)
        assert sim2.run(prog, [0]) == [1]

    def test_write_counting_excludes_preload(self):
        sim = ImpSimulator(2)
        prog = ImpProgram(
            instructions=[(OP_FALSE, 1)], num_cells=2, pi_cells=[0],
            po_cells=[1],
        )
        sim.run(prog, [1])
        assert sim.writes == [0, 1]

    def test_arity_check(self):
        sim = ImpSimulator(1)
        prog = ImpProgram(num_cells=1, pi_cells=[0])
        with pytest.raises(ValueError):
            sim.run(prog, [])

    def test_disassemble(self):
        prog = ImpProgram(
            instructions=[(OP_FALSE, 0), (OP_IMP, 0, 1)], num_cells=2
        )
        text = prog.disassemble()
        assert "FALSE(@0)" in text and "IMP(@0, @1)" in text
