"""Tests for MIG / program text serialisation and netlist importers."""

import os

import pytest

from repro.mig.graph import Mig
from repro.mig.io import (
    MigParseError,
    NETLIST_READERS,
    dumps_aiger,
    dumps_aiger_binary,
    dumps_mig,
    loads_aiger,
    loads_aiger_binary,
    loads_blif,
    loads_mig,
    read_aiger_binary,
    read_mig,
    read_netlist,
    read_program,
    write_aiger,
    write_aiger_binary,
    write_mig,
    write_program,
)
from repro.mig.signal import complement
from repro.mig.simulate import equivalent, simulate_one
from repro.plim.compiler import PlimCompiler
from repro.plim.verify import verify_program
from repro.synth.registry import BENCHMARK_ORDER, build_benchmark
from .conftest import make_random_mig

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


class TestMigRoundTrip:
    def test_simple_roundtrip(self, xor_mig):
        text = dumps_mig(xor_mig)
        back = loads_mig(text)
        assert equivalent(xor_mig, back)
        assert back.num_pis == xor_mig.num_pis
        assert back.pi_name(0) == xor_mig.pi_name(0)
        assert back.po_name(0) == xor_mig.po_name(0)

    def test_random_roundtrip(self):
        for seed in (1, 2, 3):
            mig = make_random_mig(6, 40, seed=seed)
            assert equivalent(mig, loads_mig(dumps_mig(mig)))

    def test_complemented_outputs_and_constants(self):
        mig = Mig("t")
        a = mig.add_pi("a")
        mig.add_po(complement(a), "na")
        mig.add_po(1, "one")
        back = loads_mig(dumps_mig(mig))
        assert equivalent(mig, back)

    def test_file_roundtrip(self, tmp_path, small_random_mig):
        path = tmp_path / "g.mig"
        write_mig(small_random_mig, str(path))
        assert equivalent(small_random_mig, read_mig(str(path)))

    def test_dead_nodes_not_serialised(self):
        mig = Mig("t")
        a, b, c = (mig.add_pi(n) for n in "abc")
        mig.add_maj(a, b, c)  # dead
        mig.add_po(mig.add_and(a, b), "f")
        text = dumps_mig(mig)
        assert text.count("node ") == 1


class TestMigParsing:
    def test_comments_and_blanks(self):
        text = """
        # a comment
        mig demo
        input a   # trailing comment
        input b
        node n1 = <a b 0>
        output f = ~n1
        """
        mig = loads_mig(text)
        assert mig.num_pis == 2
        assert mig.num_gates == 1

    def test_unknown_signal(self):
        with pytest.raises(MigParseError, match="unknown signal"):
            loads_mig("mig x\noutput f = q\n")

    def test_missing_header(self):
        with pytest.raises(MigParseError, match="header"):
            loads_mig("input a\noutput f = a\n")

    def test_bad_node_syntax(self):
        with pytest.raises(MigParseError):
            loads_mig("mig x\ninput a\nnode n1 = <a a>\noutput f = n1\n")

    def test_unknown_directive(self):
        with pytest.raises(MigParseError, match="unknown directive"):
            loads_mig("mig x\nlatch q\n")

    def test_duplicate_input_name(self):
        with pytest.raises(MigParseError, match=r"line 3: duplicate name 'a'"):
            loads_mig("mig x\ninput a\ninput a\noutput f = a\n")

    def test_duplicate_node_name(self):
        text = (
            "mig x\ninput a\ninput b\n"
            "node n1 = <a b 0>\nnode n1 = <a b 1>\noutput f = n1\n"
        )
        with pytest.raises(MigParseError, match=r"line 5: duplicate name 'n1'"):
            loads_mig(text)

    def test_node_shadowing_input_rejected(self):
        text = "mig x\ninput a\ninput b\nnode a = <a b 0>\noutput f = a\n"
        with pytest.raises(MigParseError, match="duplicate name 'a'"):
            loads_mig(text)


class TestBenchmarkRoundTrip:
    """dumps/loads round-trip over every registry benchmark."""

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_benchmark_roundtrip(self, name):
        mig = build_benchmark(name, "tiny")
        back = loads_mig(dumps_mig(mig))
        assert back.name == mig.name
        assert back.num_pis == mig.num_pis
        assert back.num_pos == mig.num_pos
        assert [back.pi_name(i) for i in range(back.num_pis)] == [
            mig.pi_name(i) for i in range(mig.num_pis)
        ]
        assert [back.po_name(i) for i in range(back.num_pos)] == [
            mig.po_name(i) for i in range(mig.num_pos)
        ]
        if mig.num_pis <= 16:
            assert equivalent(mig, back)
        else:
            # too wide to sweep: randomized equivalence + a fixed-point
            # check (once compacted, serialisation is stable)
            assert equivalent(mig, back, exhaustive_limit=16)
            text = dumps_mig(back)
            assert dumps_mig(loads_mig(text)) == text

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_roundtrip(self, seed):
        mig = make_random_mig(5, 30, seed=seed, num_pos=3)
        assert equivalent(mig, loads_mig(dumps_mig(mig)))


class TestBlifImport:
    def test_fulladder_fixture_semantics(self):
        mig = read_netlist(os.path.join(FIXTURES, "fulladder.blif"))
        assert mig.name == "fulladder"
        assert mig.num_pis == 3 and mig.num_pos == 2
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    out = simulate_one(mig, {"a": a, "b": b, "cin": cin})
                    assert out["sum"] == (a ^ b ^ cin)
                    assert out["cout"] == (a & b) | (a & cin) | (b & cin)

    def test_out_of_order_tables(self):
        # .names may use signals defined later; elaboration is demand-driven
        text = (
            ".model ooo\n.inputs a b\n.outputs f\n"
            ".names t f\n1 1\n.names a b t\n11 1\n.end\n"
        )
        mig = loads_blif(text)
        assert simulate_one(mig, {"a": 1, "b": 1})["f"] == 1
        assert simulate_one(mig, {"a": 1, "b": 0})["f"] == 0

    def test_continuation_lines(self):
        text = (
            ".model cont\n.inputs a \\\nb\n.outputs f\n"
            ".names a b f\n11 1\n.end\n"
        )
        mig = loads_blif(text)
        assert mig.num_pis == 2

    def test_off_set_cover(self):
        # off-set plane: f is 0 exactly when a=1,b=1 -> f = NAND
        text = (
            ".model offset\n.inputs a b\n.outputs f\n"
            ".names a b f\n11 0\n.end\n"
        )
        mig = loads_blif(text)
        for a in (0, 1):
            for b in (0, 1):
                assert simulate_one(mig, {"a": a, "b": b})["f"] == (
                    0 if (a and b) else 1
                )

    def test_constant_outputs(self):
        text = (
            ".model consts\n.inputs a\n.outputs one zero\n"
            ".names one\n1\n.names zero\n.names a unused\n1 1\n.end\n"
        )
        mig = loads_blif(text)
        assert simulate_one(mig, {"a": 0}) == {"one": 1, "zero": 0}

    def test_combinational_loop_rejected(self):
        text = (
            ".model loop\n.inputs a\n.outputs f\n"
            ".names g f\n1 1\n.names f g\n1 1\n.end\n"
        )
        with pytest.raises(MigParseError, match="combinational loop"):
            loads_blif(text)

    def test_undefined_signal_rejected(self):
        text = ".model u\n.inputs a\n.outputs f\n.names q f\n1 1\n.end\n"
        with pytest.raises(MigParseError, match="undefined signal 'q'"):
            loads_blif(text)

    def test_duplicate_definition_rejected(self):
        text = (
            ".model d\n.inputs a b\n.outputs f\n"
            ".names a f\n1 1\n.names b f\n1 1\n.end\n"
        )
        with pytest.raises(MigParseError, match="duplicate"):
            loads_blif(text)

    def test_mixed_planes_rejected(self):
        text = (
            ".model m\n.inputs a b\n.outputs f\n"
            ".names a b f\n11 1\n00 0\n.end\n"
        )
        with pytest.raises(MigParseError, match="mixed"):
            loads_blif(text)

    def test_missing_model_rejected(self):
        with pytest.raises(MigParseError, match=r"\.model"):
            loads_blif(".inputs a\n.outputs f\n.names a f\n1 1\n.end\n")


class TestAigerImport:
    def test_andor_fixture_semantics(self):
        mig = read_netlist(os.path.join(FIXTURES, "andor.aag"))
        assert mig.name == "andor"
        # symbol table applied
        assert mig.pi_name(0) == "a" and mig.pi_name(1) == "b"
        assert mig.po_name(0) == "and" and mig.po_name(1) == "or"
        for a in (0, 1):
            for b in (0, 1):
                out = simulate_one(mig, {"a": a, "b": b})
                assert out["and"] == (a & b)
                assert out["or"] == (a | b)

    def test_out_of_order_gates(self):
        # gate 6 references gate 8, defined later
        text = "aag 4 1 0 1 2\n2\n6\n6 8 8\n8 2 2\n"
        mig = loads_aiger(text)
        assert simulate_one(mig, {"i0": 1})["o0"] == 1
        assert simulate_one(mig, {"i0": 0})["o0"] == 0

    def test_complemented_output(self):
        text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n"
        mig = loads_aiger(text)
        for a in (0, 1):
            for b in (0, 1):
                out = simulate_one(mig, {"i0": a, "i1": b})
                assert out["o0"] == (0 if (a and b) else 1)

    def test_constant_inputs_to_gates(self):
        # gate AND(lit 1 = const1, a) == a
        text = "aag 2 1 0 1 1\n2\n4\n4 1 2\n"
        mig = loads_aiger(text)
        assert simulate_one(mig, {"i0": 1})["o0"] == 1
        assert simulate_one(mig, {"i0": 0})["o0"] == 0

    def test_latches_rejected(self):
        with pytest.raises(MigParseError, match="latch"):
            loads_aiger("aag 3 1 1 1 0\n2\n4 2\n4\n")

    def test_cyclic_gates_rejected(self):
        text = "aag 3 1 0 1 1\n2\n4\n4 4 2\n"
        with pytest.raises(MigParseError, match="cyclic or undefined"):
            loads_aiger(text)

    def test_undefined_output_rejected(self):
        with pytest.raises(MigParseError, match="undefined literal"):
            loads_aiger("aag 3 1 0 1 0\n2\n6\n")

    def test_binary_aig_header_rejected(self):
        with pytest.raises(MigParseError, match="aag"):
            loads_aiger("aig 3 1 0 1 1\n")


class TestAigerExport:
    """MIG → ``aag`` text, round-tripped through the importer."""

    @pytest.mark.parametrize("name", ["adder", "ctrl", "dec", "int2float"])
    def test_benchmark_roundtrip(self, name):
        mig = build_benchmark(name, "tiny")
        text = dumps_aiger(mig)
        header = text.splitlines()[0].split()
        assert header[0] == "aag" and int(header[3]) == 0  # no latches
        back = loads_aiger(text)
        assert equivalent(mig, back, exhaustive_limit=16)
        # symbol table carries both boundary name sets
        assert [back.pi_name(i) for i in range(back.num_pis)] == [
            mig.pi_name(i) for i in range(mig.num_pis)
        ]
        assert [back.po_name(i) for i in range(back.num_pos)] == [
            mig.po_name(i) for i in range(mig.num_pos)
        ]

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_roundtrip(self, seed):
        mig = make_random_mig(5, 30, seed=seed, num_pos=3)
        assert equivalent(mig, loads_aiger(dumps_aiger(mig)))

    def test_constant_outputs(self):
        mig = Mig("consts")
        mig.add_pi("a")
        mig.add_po(0, "lo")
        mig.add_po(1, "hi")
        back = loads_aiger(dumps_aiger(mig))
        out = simulate_one(back, {"a": 0})
        assert (out["lo"], out["hi"]) == (0, 1)

    def test_write_aiger_to_path(self, tmp_path, xor_mig):
        path = tmp_path / "x.aag"
        write_aiger(xor_mig, str(path))
        assert equivalent(xor_mig, read_netlist(str(path)))


class TestAigerBinary:
    """Binary ``.aig`` writer/reader vs the ASCII ``aag`` flavour."""

    @pytest.mark.parametrize("name", ["adder", "ctrl", "dec", "int2float"])
    def test_binary_and_ascii_decode_identically(self, name):
        mig = build_benchmark(name, "tiny")
        from_ascii = loads_aiger(dumps_aiger(mig))
        from_binary = loads_aiger_binary(dumps_aiger_binary(mig))
        # not merely equivalent: both decodings are the same graph
        assert dumps_mig(from_binary) == dumps_mig(from_ascii)
        assert equivalent(mig, from_binary, exhaustive_limit=16)

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_roundtrip(self, seed):
        mig = make_random_mig(6, 40, seed=seed, num_pos=3)
        back = loads_aiger_binary(dumps_aiger_binary(mig))
        assert equivalent(mig, back)

    def test_symbol_table_preserved(self, xor_mig):
        back = loads_aiger_binary(dumps_aiger_binary(xor_mig))
        assert [back.pi_name(i) for i in range(back.num_pis)] == ["a", "b"]
        assert back.po_name(0) == "f"

    def test_multibyte_deltas(self):
        # >127 gates forces LEB128 continuation bytes in the deltas
        mig = make_random_mig(8, 400, seed=3, num_pos=4)
        blob = dumps_aiger_binary(mig)
        assert equivalent(
            mig, loads_aiger_binary(blob), exhaustive_limit=16
        )

    def test_file_round_trip_and_dispatch(self, tmp_path, small_random_mig):
        path = tmp_path / "g.aig"
        write_aiger_binary(small_random_mig, str(path))
        direct = read_aiger_binary(str(path))
        via_dispatch = read_netlist(str(path))
        assert via_dispatch.name == "g"  # dispatch names by the stem
        direct.name = via_dispatch.name
        assert dumps_mig(direct) == dumps_mig(via_dispatch)
        assert equivalent(small_random_mig, via_dispatch)

    def test_str_input_rejected(self):
        with pytest.raises(MigParseError, match="bytes"):
            loads_aiger_binary("aig 0 0 0 0 0\n")

    def test_aag_header_rejected(self):
        with pytest.raises(MigParseError, match="'aig"):
            loads_aiger_binary(b"aag 0 0 0 0 0\n")

    def test_latches_rejected(self):
        with pytest.raises(MigParseError, match="latch"):
            loads_aiger_binary(b"aig 2 1 1 0 0\n2\n")

    def test_truncated_gate_section(self):
        blob = dumps_aiger_binary(build_benchmark("ctrl", "tiny"))
        with pytest.raises(MigParseError, match="truncated"):
            loads_aiger_binary(blob[: len(blob) // 2])

    def test_bad_header_counts(self):
        with pytest.raises(MigParseError, match="maxvar"):
            loads_aiger_binary(b"aig 1 1 0 0 1\n")

    def test_zero_delta_rejected(self):
        # delta0 == 0 would make the gate its own operand
        with pytest.raises(MigParseError, match="invalid deltas"):
            loads_aiger_binary(b"aig 2 1 0 0 1\n\x00\x00")


class TestReadNetlist:
    def test_dispatch_table_covers_formats(self):
        assert {".mig", ".blif", ".aag", ".aiger", ".aig"} <= set(
            NETLIST_READERS
        )

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.v"
        path.write_text("module x; endmodule\n")
        with pytest.raises(MigParseError, match="extension"):
            read_netlist(str(path))

    def test_name_defaults_to_stem(self, tmp_path, xor_mig):
        path = tmp_path / "renamed.mig"
        write_mig(xor_mig, str(path))
        assert read_netlist(str(path)).name == "xor2"  # .mig keeps header name

    def test_exchange_format_through_dispatch(self, tmp_path, small_random_mig):
        path = tmp_path / "g.mig"
        write_mig(small_random_mig, str(path))
        assert equivalent(small_random_mig, read_netlist(str(path)))


class TestProgramRoundTrip:
    def test_compiled_program_roundtrip(self, tmp_path, tiny_adder):
        program = PlimCompiler(allocation="min_write").compile(tiny_adder)
        path = tmp_path / "p.rm3"
        write_program(program, str(path))
        back = read_program(str(path))
        assert back.instructions == program.instructions
        assert back.num_cells == program.num_cells
        assert back.pi_cells == program.pi_cells
        assert back.po_cells == program.po_cells
        verify_program(back, tiny_adder)

    def test_bad_operand(self, tmp_path):
        path = tmp_path / "bad.rm3"
        path.write_text("program x\ncells 1\nRM3 ? 0 @0\n")
        with pytest.raises(MigParseError):
            read_program(str(path))

    def test_validation_applied(self, tmp_path):
        path = tmp_path / "bad2.rm3"
        path.write_text("program x\ncells 1\nRM3 0 1 @7\n")
        with pytest.raises(ValueError):
            read_program(str(path))
