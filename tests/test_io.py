"""Tests for MIG / program text serialisation."""

import pytest

from repro.mig.graph import Mig
from repro.mig.io import (
    MigParseError,
    dumps_mig,
    loads_mig,
    read_mig,
    read_program,
    write_mig,
    write_program,
)
from repro.mig.signal import complement
from repro.mig.simulate import equivalent
from repro.plim.compiler import PlimCompiler
from repro.plim.verify import verify_program
from .conftest import make_random_mig


class TestMigRoundTrip:
    def test_simple_roundtrip(self, xor_mig):
        text = dumps_mig(xor_mig)
        back = loads_mig(text)
        assert equivalent(xor_mig, back)
        assert back.num_pis == xor_mig.num_pis
        assert back.pi_name(0) == xor_mig.pi_name(0)
        assert back.po_name(0) == xor_mig.po_name(0)

    def test_random_roundtrip(self):
        for seed in (1, 2, 3):
            mig = make_random_mig(6, 40, seed=seed)
            assert equivalent(mig, loads_mig(dumps_mig(mig)))

    def test_complemented_outputs_and_constants(self):
        mig = Mig("t")
        a = mig.add_pi("a")
        mig.add_po(complement(a), "na")
        mig.add_po(1, "one")
        back = loads_mig(dumps_mig(mig))
        assert equivalent(mig, back)

    def test_file_roundtrip(self, tmp_path, small_random_mig):
        path = tmp_path / "g.mig"
        write_mig(small_random_mig, str(path))
        assert equivalent(small_random_mig, read_mig(str(path)))

    def test_dead_nodes_not_serialised(self):
        mig = Mig("t")
        a, b, c = (mig.add_pi(n) for n in "abc")
        mig.add_maj(a, b, c)  # dead
        mig.add_po(mig.add_and(a, b), "f")
        text = dumps_mig(mig)
        assert text.count("node ") == 1


class TestMigParsing:
    def test_comments_and_blanks(self):
        text = """
        # a comment
        mig demo
        input a   # trailing comment
        input b
        node n1 = <a b 0>
        output f = ~n1
        """
        mig = loads_mig(text)
        assert mig.num_pis == 2
        assert mig.num_gates == 1

    def test_unknown_signal(self):
        with pytest.raises(MigParseError, match="unknown signal"):
            loads_mig("mig x\noutput f = q\n")

    def test_missing_header(self):
        with pytest.raises(MigParseError, match="header"):
            loads_mig("input a\noutput f = a\n")

    def test_bad_node_syntax(self):
        with pytest.raises(MigParseError):
            loads_mig("mig x\ninput a\nnode n1 = <a a>\noutput f = n1\n")

    def test_unknown_directive(self):
        with pytest.raises(MigParseError, match="unknown directive"):
            loads_mig("mig x\nlatch q\n")


class TestProgramRoundTrip:
    def test_compiled_program_roundtrip(self, tmp_path, tiny_adder):
        program = PlimCompiler(allocation="min_write").compile(tiny_adder)
        path = tmp_path / "p.rm3"
        write_program(program, str(path))
        back = read_program(str(path))
        assert back.instructions == program.instructions
        assert back.num_cells == program.num_cells
        assert back.pi_cells == program.pi_cells
        assert back.po_cells == program.po_cells
        verify_program(back, tiny_adder)

    def test_bad_operand(self, tmp_path):
        path = tmp_path / "bad.rm3"
        path.write_text("program x\ncells 1\nRM3 ? 0 @0\n")
        with pytest.raises(MigParseError):
            read_program(str(path))

    def test_validation_applied(self, tmp_path):
        path = tmp_path / "bad2.rm3"
        path.write_text("program x\ncells 1\nRM3 0 1 @7\n")
        with pytest.raises(ValueError):
            read_program(str(path))
