"""Tests for the secondary compiler knobs (ablation flags)."""

from hypothesis import given, settings, strategies as st

from repro.core.manager import EnduranceConfig, compile_pipeline
from repro.core.selection import make_selection
from repro.plim.compiler import PlimCompiler
from repro.plim.verify import verify_program
from repro.synth.arithmetic import build_adder
from .conftest import make_random_mig


class TestPiOverwrite:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_disabling_reuse_verifies(self, seed):
        mig = make_random_mig(6, 35, seed=seed)
        program = PlimCompiler(allow_pi_overwrite=False).compile(mig)
        verify_program(program, mig, patterns=64)
        # input devices receive no writes when protected
        for cell in program.pi_cells:
            assert program.write_counts()[cell] == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_protection_never_cheaper(self, seed):
        mig = make_random_mig(6, 35, seed=seed)
        reuse = PlimCompiler(allow_pi_overwrite=True).compile(mig)
        protect = PlimCompiler(allow_pi_overwrite=False).compile(mig)
        assert protect.num_instructions >= reuse.num_instructions
        assert protect.num_rrams >= reuse.num_rrams

    def test_config_plumbing(self):
        mig = build_adder(width=4)
        cfg = EnduranceConfig(name="protected", allow_pi_overwrite=False)
        result = compile_pipeline(mig, cfg)
        for cell in result.program.pi_cells:
            assert result.program.write_counts()[cell] == 0


class TestFanoutAggregate:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**5))
    def test_min_aggregate_verifies(self, seed):
        mig = make_random_mig(6, 35, seed=seed)
        program = PlimCompiler(
            selection=make_selection("endurance"), fanout_aggregate="min"
        ).compile(mig)
        verify_program(program, mig, patterns=64)

    def test_aggregates_can_change_schedule(self):
        """On graphs with multi-level fanouts the first-use and last-use
        readings order candidates differently (the knob is not inert)."""
        found_difference = False
        for seed in range(30):
            mig = make_random_mig(6, 45, seed=seed)
            a = PlimCompiler(
                selection=make_selection("endurance"),
                fanout_aggregate="max",
            ).compile(mig)
            b = PlimCompiler(
                selection=make_selection("endurance"),
                fanout_aggregate="min",
            ).compile(mig)
            if a.instructions != b.instructions:
                found_difference = True
                break
        assert found_difference
