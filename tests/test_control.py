"""Tests for the control benchmark generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mig.simulate import MAX_EXHAUSTIVE_PIS, equivalent, simulate
from repro.synth import control as C


def unpack(value, width):
    return [(value >> i) & 1 for i in range(width)]


def pack(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestDec:
    @pytest.fixture(scope="class")
    def mig(self):
        return C.build_dec(sel_bits=4)

    @settings(max_examples=16, deadline=None)
    @given(sel=st.integers(min_value=0, max_value=15))
    def test_one_hot(self, mig, sel):
        outs = simulate(mig, unpack(sel, 4))
        assert pack(outs) == C.dec_model(sel, 4)

    def test_interface(self, mig):
        assert mig.num_pis == 4
        assert mig.num_pos == 16


class TestPriority:
    @pytest.fixture(scope="class")
    def mig(self):
        return C.build_priority(width=16)

    @settings(max_examples=40, deadline=None)
    @given(req=st.integers(min_value=0, max_value=(1 << 16) - 1))
    def test_matches_model(self, mig, req):
        outs = simulate(mig, unpack(req, 16))
        idx = pack(outs[:-1])
        valid = outs[-1]
        m_idx, m_valid = C.priority_model(req, 16)
        assert valid == m_valid
        if valid:
            assert idx == m_idx

    def test_interface(self, mig):
        # 128-wide: 7 index bits + valid = 8 outputs (the EPFL shape)
        big = C.build_priority(width=128)
        assert big.num_pis == 128
        assert big.num_pos == 8


class TestVoter:
    @pytest.fixture(scope="class")
    def mig(self):
        return C.build_voter(inputs=9)

    @settings(max_examples=40, deadline=None)
    @given(votes=st.integers(min_value=0, max_value=(1 << 9) - 1))
    def test_matches_model(self, mig, votes):
        outs = simulate(mig, unpack(votes, 9))
        assert outs[0] == C.voter_model(votes, 9)

    def test_even_inputs_rejected(self):
        with pytest.raises(ValueError):
            C.build_voter(inputs=10)

    def test_interface(self, mig):
        assert mig.num_pos == 1


class TestInt2Float:
    @pytest.fixture(scope="class")
    def mig(self):
        return C.build_int2float()

    @settings(max_examples=60, deadline=None)
    @given(x=st.integers(min_value=0, max_value=(1 << 11) - 1))
    def test_matches_model(self, mig, x):
        outs = simulate(mig, unpack(x, 11))
        exp = pack(outs[:4])
        man = pack(outs[4:])
        m_exp, m_man = C.int2float_model(x)
        assert (exp, man) == (m_exp, m_man)

    def test_interface(self, mig):
        assert mig.num_pis == 11
        assert mig.num_pos == 7

    def test_zero_maps_to_zero(self, mig):
        outs = simulate(mig, [0] * 11)
        assert all(o == 0 for o in outs)

    def test_model_reconstruction(self):
        # value ~ (8 + mantissa) * 2^(exp-4) for normalised inputs
        for x in [9, 100, 513, 2047]:
            exp, man = C.int2float_model(x)
            approx = (8 + man) * 2.0 ** (exp - 4)
            assert abs(approx - x) / x < 0.14  # 3-bit mantissa truncation


class TestRandomNetworks:
    def test_deterministic(self):
        a = C.random_control_network("t", 8, 6, 50, seed=42)
        b = C.random_control_network("t", 8, 6, 50, seed=42)
        assert equivalent(a, b)
        assert a.num_gates == b.num_gates

    def test_different_seeds_differ(self):
        a = C.random_control_network("t", 8, 6, 50, seed=1)
        b = C.random_control_network("t", 8, 6, 50, seed=2)
        assert not equivalent(a, b)

    def test_interface_shapes(self):
        for builder, pis, pos in [
            (C.build_cavlc, 10, 11),
            (C.build_ctrl, 7, 26),
        ]:
            mig = builder(num_gates=60)
            assert mig.num_pis == pis
            assert mig.num_pos == pos

    def test_named_builders_deterministic(self):
        # 60 inputs: too wide for exhaustive checking, so opt in to the
        # randomized check explicitly (the silent fallback is gone).
        assert equivalent(
            C.build_router(num_gates=50),
            C.build_router(num_gates=50),
            exhaustive_limit=MAX_EXHAUSTIVE_PIS,
        )

    def test_outputs_depend_on_logic(self):
        mig = C.random_control_network("t", 8, 6, 80, seed=3)
        # at least one output must be a gate, not a passthrough PI
        from repro.mig.signal import node_of

        assert any(mig.is_gate(node_of(s)) for s in mig.pos())
