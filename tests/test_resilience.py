"""Tests for the resilience layer (repro.resilience + its integration).

The fault-injection harness plants *real* faults — a worker calling
``os._exit`` mid-job, a torn cache blob, a numpy kernel blowing up — so
these tests exercise the actual recovery paths: supervised retries, pool
respawns, kernel degradation, manifest provenance, and the acceptance
criterion that a faulted parallel run produces artefacts byte-identical
to a fault-free serial run.
"""

import hashlib
import os
import pathlib

import pytest

from repro.analysis.diskcache import DiskCache
from repro.analysis.runner import run_matrix
from repro.flow import Session
from repro.resilience import (
    PermanentFault,
    RetriesExhaustedError,
    RetryPolicy,
    StageTimeoutError,
    TransientFault,
    Timeouts,
    WorkerCrashError,
    call_with_retry,
    classify_transient,
    events,
    iter_manifests,
    load_manifest,
    manifest_path,
    parse_faults,
    resolve_timeouts,
    time_limit,
    verify_manifest,
    write_manifest,
)
from repro.resilience import faults
from repro.resilience.manifest import append_manifest_events, build_manifest

SUBSET = ["adder", "dec", "ctrl"]


@pytest.fixture(autouse=True)
def _clean_resilience_state(monkeypatch):
    """Isolate every test: no ambient fault spec, fresh plan cache/log."""
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.LEDGER_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_TIMEOUT", raising=False)
    faults._CACHED = None
    events.clear()
    yield
    faults._CACHED = None
    events.clear()


def _arm(monkeypatch, tmp_path, spec):
    """Activate a $REPRO_FAULTS spec with a test-local fire ledger."""
    ledger = tmp_path / "fault-ledger"
    ledger.mkdir(exist_ok=True)
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, spec)
    monkeypatch.setenv(faults.LEDGER_ENV_VAR, str(ledger))
    faults._CACHED = None
    return ledger


def _result_signature(evaluation):
    """Comparable digest of one evaluation (programs incl. write counts)."""
    return {
        key: (
            res.num_instructions,
            res.num_rrams,
            tuple(res.program.write_counts()),
        )
        for key, res in evaluation.results.items()
    }


def _artefact_digests(root):
    """Map of cache-entry filename -> SHA-256 under one cache root."""
    digests = {}
    for path in pathlib.Path(root).rglob("*.pkl"):
        digests[path.name] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digests


class TestClassifyTransient:
    def test_repro_errors_are_authoritative(self):
        assert classify_transient(TransientFault("x"))
        assert not classify_transient(PermanentFault("x"))
        assert classify_transient(WorkerCrashError("adder", 1))
        assert not classify_transient(StageTimeoutError("compile", 30.0))
        assert not classify_transient(
            RetriesExhaustedError("adder", 3, TransientFault("x"))
        )

    def test_foreign_process_and_io_failures_are_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert classify_transient(BrokenProcessPool("pool died"))
        assert classify_transient(OSError("disk hiccup"))
        assert classify_transient(EOFError())
        assert classify_transient(ConnectionError())

    def test_fatal_and_deterministic_failures_are_not(self):
        assert not classify_transient(KeyboardInterrupt())
        assert not classify_transient(MemoryError())
        assert not classify_transient(SystemExit(1))
        assert not classify_transient(ValueError("bad input"))
        assert not classify_transient(TypeError("bug"))


class TestRetryPolicy:
    def test_delays_are_deterministic(self):
        policy = RetryPolicy(attempts=5, base=0.05, jitter=0.25)
        first = [policy.delay(n, key=("adder",)) for n in (1, 2, 3)]
        again = [policy.delay(n, key=("adder",)) for n in (1, 2, 3)]
        assert first == again

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base=0.1, factor=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_bounded_and_key_dependent(self):
        policy = RetryPolicy(base=0.1, factor=1.0, max_delay=1.0, jitter=0.25)
        a = policy.delay(1, key=("adder",))
        b = policy.delay(1, key=("dec",))
        assert 0.1 <= a <= 0.125 and 0.1 <= b <= 0.125
        assert a != b  # jitter decorrelates per key

    def test_call_with_retry_recovers_transient(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("hiccup")
            return "ok"

        seen = []
        out = call_with_retry(
            flaky,
            policy=RetryPolicy(attempts=3, jitter=0.0, base=0.01),
            key=("job",),
            on_retry=lambda n, e: seen.append((n, type(e).__name__)),
            sleep=slept.append,
        )
        assert out == "ok"
        assert len(calls) == 3
        assert seen == [(1, "TransientFault"), (2, "TransientFault")]
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_call_with_retry_permanent_propagates_first_time(self):
        calls = []

        def broken():
            calls.append(1)
            raise PermanentFault("deterministic")

        with pytest.raises(PermanentFault):
            call_with_retry(broken, sleep=lambda s: None)
        assert len(calls) == 1

    def test_call_with_retry_exhausts_into_permanent(self):
        def always():
            raise TransientFault("never better")

        with pytest.raises(RetriesExhaustedError) as excinfo:
            call_with_retry(
                always,
                policy=RetryPolicy(attempts=2, base=0.0, jitter=0.0),
                job="adder",
                sleep=lambda s: None,
            )
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, TransientFault)
        assert not excinfo.value.transient  # budget spent => permanent


class TestResolveRetry:
    def test_default_policy_without_flag_or_env(self, monkeypatch):
        from repro.resilience import DEFAULT_POLICY, resolve_retry

        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retry() is DEFAULT_POLICY
        assert resolve_retry(None) is DEFAULT_POLICY

    def test_flag_overrides_attempt_budget(self):
        from repro.resilience import DEFAULT_POLICY, resolve_retry

        policy = resolve_retry(5)
        assert policy.attempts == 5
        assert policy.base == DEFAULT_POLICY.base  # backoff shape kept
        assert resolve_retry("7").attempts == 7

    def test_env_var_used_when_no_flag(self, monkeypatch):
        from repro.resilience import resolve_retry

        monkeypatch.setenv("REPRO_RETRIES", "4")
        assert resolve_retry().attempts == 4

    def test_flag_beats_env(self, monkeypatch):
        from repro.resilience import resolve_retry

        monkeypatch.setenv("REPRO_RETRIES", "9")
        assert resolve_retry(2).attempts == 2

    def test_default_budget_returns_shared_policy(self, monkeypatch):
        from repro.resilience import DEFAULT_POLICY, resolve_retry

        assert resolve_retry(DEFAULT_POLICY.attempts) is DEFAULT_POLICY

    def test_malformed_and_non_positive_rejected(self, monkeypatch):
        from repro.resilience import resolve_retry

        with pytest.raises(ValueError, match="invalid retry budget"):
            resolve_retry("lots")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_retry(0)
        monkeypatch.setenv("REPRO_RETRIES", "nope")
        with pytest.raises(ValueError, match="invalid retry budget"):
            resolve_retry()


class TestTimeouts:
    def test_parse_bare_number_sets_stage_default(self):
        t = Timeouts.parse("30")
        assert t.limit("compile") == 30.0
        assert t.limit("verify") == 30.0
        # the whole-job budget is only ever explicit
        assert t.limit("job") is None

    def test_parse_named_entries(self):
        t = Timeouts.parse("compile=120,verify=30,job=600")
        assert t.limit("compile") == 120.0
        assert t.limit("verify") == 30.0
        assert t.limit("job") == 600.0
        assert t.limit("rewrite") is None

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            Timeouts.parse("compile=soon")
        with pytest.raises(ValueError):
            Timeouts.parse("teleport=30")

    def test_zero_means_unlimited(self):
        assert not Timeouts.parse("0")
        assert Timeouts.parse("compile=0").limit("compile") is None

    def test_spec_round_trips(self):
        for spec in ("30", "compile=120,job=600", "15,verify=5"):
            t = Timeouts.parse(spec)
            assert Timeouts.parse(t.spec()) == t
        assert Timeouts.parse(None).spec() is None

    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "7")
        assert resolve_timeouts("5").default == 5.0  # explicit beats env
        assert resolve_timeouts(None).default == 7.0  # env beats nothing
        monkeypatch.delenv("REPRO_TIMEOUT")
        assert resolve_timeouts(None).default is None

    def test_session_threads_timeouts(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "compile=40")
        session = Session(preset="tiny")
        assert session.timeouts.limit("compile") == 40.0
        explicit = Session(preset="tiny", timeouts="compile=9,job=60")
        assert explicit.timeouts.limit("compile") == 9.0
        # the spec ships to worker processes and round-trips
        assert Session.from_spec(explicit.spec()).timeouts == explicit.timeouts

    def test_time_limit_interrupts_a_wedged_loop(self):
        import time as _time

        with pytest.raises(StageTimeoutError) as excinfo:
            with time_limit(0.1, stage="compile", job="adder"):
                deadline = _time.monotonic() + 5.0
                while _time.monotonic() < deadline:
                    pass
        assert excinfo.value.stage == "compile"
        assert excinfo.value.job == "adder"
        assert not excinfo.value.transient

    def test_time_limit_none_is_noop(self):
        with time_limit(None, stage="compile"):
            pass
        with time_limit(0, stage="compile"):
            pass

    def test_time_limit_nests(self):
        import time as _time

        with time_limit(5.0, stage="job"):
            with pytest.raises(StageTimeoutError) as excinfo:
                with time_limit(0.05, stage="compile"):
                    _time.sleep(1.0)
            assert excinfo.value.stage == "compile"
            _time.sleep(0.05)  # outer budget re-armed, not expired


class TestFaultSpec:
    def test_parse_directives(self):
        plan = parse_faults(
            "worker_crash:job=mult4:count=2,cache_corrupt,"
            "worker_hang:seconds=0.5,job_fail:mode=permanent"
        )
        crash, corrupt, hang, fail = plan
        assert (crash.point, crash.job, crash.count) == (
            "worker_crash", "mult4", 2,
        )
        assert (corrupt.point, corrupt.job, corrupt.count) == (
            "cache_corrupt", None, 1,
        )
        assert hang.seconds == 0.5
        assert fail.mode == "permanent"
        assert crash.index != corrupt.index  # distinct ledger identities
        assert crash.ledger_id() != corrupt.ledger_id()

    def test_parse_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            parse_faults("segfault:count=1")

    def test_parse_rejects_bad_field(self):
        with pytest.raises(ValueError, match="bad fault field"):
            parse_faults("worker_crash:sev=high")
        with pytest.raises(ValueError, match="bad fault mode"):
            parse_faults("job_fail:mode=flaky")

    def test_job_scoping(self):
        directive = parse_faults("worker_crash:job=adder")[0]
        assert directive.matches("adder")
        assert not directive.matches("dec")
        assert parse_faults("worker_crash")[0].matches("anything")


class TestFaultLedger:
    def test_count_caps_fires_within_one_plan(self, tmp_path):
        ledger = tmp_path / "ledger"
        ledger.mkdir()
        plan = faults.FaultPlan.parse("job_fail:count=2", ledger=str(ledger))
        assert plan.fire("job_fail") is not None
        assert plan.fire("job_fail") is not None
        assert plan.fire("job_fail") is None  # budget spent

    def test_budget_holds_across_plan_instances(self, tmp_path):
        """A retried worker re-parses the spec; the ledger must stop it
        from re-firing a spent count=1 fault forever."""
        ledger = tmp_path / "ledger"
        ledger.mkdir()
        first = faults.FaultPlan.parse("worker_crash", ledger=str(ledger))
        assert first.fire("worker_crash", "adder") is not None
        # a fresh plan (fresh process) sharing the ledger sees it spent
        second = faults.FaultPlan.parse("worker_crash", ledger=str(ledger))
        assert second.fire("worker_crash", "adder") is None

    def test_local_budget_without_ledger(self):
        plan = faults.FaultPlan.parse("job_fail:count=1", ledger=None)
        assert plan.fire("job_fail") is not None
        assert plan.fire("job_fail") is None

    def test_fire_records_event(self, tmp_path):
        ledger = tmp_path / "ledger"
        ledger.mkdir()
        plan = faults.FaultPlan.parse("job_fail:job=adder", ledger=str(ledger))
        with events.capture() as log:
            assert plan.fire("job_fail", "dec") is None  # wrong job
            assert plan.fire("job_fail", "adder") is not None
        assert [e["kind"] for e in log] == ["fault_injected"]
        assert log[0]["job"] == "adder"

    def test_active_plan_exports_ledger(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "job_fail:count=1")
        faults._CACHED = None
        plan = faults.active_plan()
        assert plan is not None and plan.ledger is not None
        # exported so forked pool workers share the fire budget
        assert os.environ[faults.LEDGER_ENV_VAR] == plan.ledger


class TestEvents:
    def test_capture_scopes_collection(self):
        with events.capture() as outer:
            events.record("retry", job="adder", attempt=1)
            with events.capture() as inner:
                events.record("pool_respawn", jobs=["dec"])
            events.record("retry", job="dec", attempt=1)
        assert [e["kind"] for e in outer] == ["retry", "pool_respawn", "retry"]
        assert [e["kind"] for e in inner] == ["pool_respawn"]

    def test_snapshot_filters(self):
        events.record("retry", job="adder", attempt=1)
        events.record("kernel_degraded", job="dec", backend="numpy")
        assert [
            e["job"] for e in events.snapshot(kind="retry")
        ] == ["adder"]
        assert [
            e["kind"] for e in events.snapshot(job="dec")
        ] == ["kernel_degraded"]


class TestManifest:
    def _store_one(self, tmp_path, payload="payload"):
        disk = DiskCache(tmp_path / "cache")
        key = ("result", "adder", "tiny", "cfg")
        disk.store(
            key,
            payload,
            manifest={
                "benchmark": "adder",
                "config": "naive",
                "verified_patterns": 64,
                "events": [{"kind": "retry", "job": "adder", "attempt": 1}],
            },
        )
        return disk, key, disk.entry_path(key)

    def test_store_writes_validating_sidecar(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        sidecar = manifest_path(entry)
        assert sidecar.is_file()
        manifest = load_manifest(entry)
        assert manifest["benchmark"] == "adder"
        assert manifest["artefact"]["sha256"] == hashlib.sha256(
            entry.read_bytes()
        ).hexdigest()
        assert [e["kind"] for e in manifest["events"]] == ["retry"]
        assert verify_manifest(sidecar) == []

    def test_verify_flags_tampered_artefact(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        entry.write_bytes(entry.read_bytes() + b"garbage")
        problems = verify_manifest(manifest_path(entry))
        assert any("digest mismatch" in p for p in problems)
        assert any("size mismatch" in p for p in problems)

    def test_verify_flags_missing_artefact(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        entry.unlink()
        problems = verify_manifest(manifest_path(entry))
        assert any("missing" in p for p in problems)

    def test_append_events_merges_without_duplicates(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        crash = {"kind": "pool_respawn", "jobs": ["adder"]}
        assert append_manifest_events(entry, [crash])
        assert append_manifest_events(entry, [crash])  # exact dup dropped
        manifest = load_manifest(entry)
        assert [e["kind"] for e in manifest["events"]] == [
            "retry", "pool_respawn",
        ]
        assert verify_manifest(manifest_path(entry)) == []

    def test_rewrite_preserves_event_history(self, tmp_path):
        """A certificate upgrade must not erase the original run's log."""
        disk, key, entry = self._store_one(tmp_path)
        fresh = build_manifest(
            entry,
            key_repr=repr(key),
            meta={"verified_patterns": 256},
            events=[{"kind": "kernel_degraded", "job": "adder"}],
        )
        write_manifest(entry, fresh)
        manifest = load_manifest(entry)
        assert manifest["verified_patterns"] == 256
        assert [e["kind"] for e in manifest["events"]] == [
            "retry", "kernel_degraded",
        ]

    def test_iter_manifests_scopes_by_fingerprint(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        found = list(iter_manifests(disk.root))
        assert len(found) == 1
        assert found[0][1]["benchmark"] == "adder"
        assert list(iter_manifests(disk.root, fingerprint="0" * 64)) == []
        assert list(
            iter_manifests(disk.root, fingerprint=disk.fingerprint)
        ) == found

    def test_unreadable_sidecar_surfaces_in_iteration(self, tmp_path):
        disk, key, entry = self._store_one(tmp_path)
        manifest_path(entry).write_text("{torn")
        ((path, manifest),) = iter_manifests(disk.root)
        assert manifest == {}
        assert verify_manifest(path) == ["manifest unreadable or not valid JSON"]


class TestDiskCacheChaos:
    def test_injected_corruption_is_a_miss_then_heals(
        self, tmp_path, monkeypatch
    ):
        disk = DiskCache(tmp_path / "cache")
        key = ("result", "adder", "tiny")
        disk.store(key, {"v": 1})
        _arm(monkeypatch, tmp_path, "cache_corrupt:job=adder:count=1")
        assert disk.load(key) is None  # corrupt => miss, never data
        assert disk.load(key) == {"v": 1}  # budget spent, file intact

    def test_injected_store_io_fault_skips_persist(
        self, tmp_path, monkeypatch
    ):
        disk = DiskCache(tmp_path / "cache")
        key = ("result", "adder", "tiny")
        _arm(monkeypatch, tmp_path, "cache_io:job=adder:count=1")
        disk.store(key, {"v": 1})  # swallowed, no crash
        faults._CACHED = None
        assert disk.load(key) is None
        disk.store(key, {"v": 1})  # budget spent: persists now
        assert disk.load(key) == {"v": 1}

    def test_store_releases_lock_after_io_fault(self, tmp_path, monkeypatch):
        disk = DiskCache(tmp_path / "cache")
        key = ("result", "adder", "tiny")
        _arm(monkeypatch, tmp_path, "cache_io:job=adder:count=1")
        disk.store(key, {"v": 1})
        lock = disk.entry_path(key).with_suffix(".lock")
        assert not lock.exists()  # a failed write never wedges siblings


class TestKernelDegradation:
    def test_injected_kernel_fault_demotes_to_bigint(
        self, tmp_path, monkeypatch
    ):
        """A numpy-kernel failure mid-verification must demote the job to
        the bigint reference kernel — same results, plus a recorded
        ``kernel_degraded`` event."""
        pytest.importorskip("numpy")
        baseline = Session(backend="numpy", preset="tiny").run_matrix(
            ["adder"], ["naive"], verify=True, verify_patterns=256
        )
        # width 256 >= the numpy dispatch threshold, so the fault fires
        _arm(monkeypatch, tmp_path, "kernel_fail:job=adder:count=1")
        with events.capture() as log:
            degraded = Session(backend="numpy", preset="tiny").run_matrix(
                ["adder"], ["naive"], verify=True, verify_patterns=256
            )
        kinds = {e["kind"] for e in log}
        assert "fault_injected" in kinds and "kernel_degraded" in kinds
        (event,) = [e for e in log if e["kind"] == "kernel_degraded"]
        assert event["job"] == "adder"
        assert event["fallback"] == "bigint"
        assert _result_signature(degraded[0]) == _result_signature(
            baseline[0]
        )


class TestSupervisedRunner:
    def test_serial_retry_recovers_transient_job_fault(
        self, tmp_path, monkeypatch
    ):
        baseline = run_matrix(SUBSET, ["naive"], preset="tiny")
        _arm(monkeypatch, tmp_path, "job_fail:job=dec:count=1")
        with events.capture() as log:
            faulted = run_matrix(SUBSET, ["naive"], preset="tiny")
        retries = [e for e in log if e["kind"] == "retry"]
        assert [e["job"] for e in retries] == ["dec"]
        assert "FaultInjected" in retries[0]["error"]
        for reference, survivor in zip(baseline, faulted):
            assert _result_signature(survivor) == _result_signature(reference)

    def test_serial_permanent_fault_propagates(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "job_fail:job=dec:mode=permanent")
        with pytest.raises(PermanentFault):
            run_matrix(SUBSET, ["naive"], preset="tiny")

    def test_serial_exhausted_budget_surfaces(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "job_fail:job=dec:count=99")
        with pytest.raises(RetriesExhaustedError) as excinfo:
            run_matrix(
                SUBSET,
                ["naive"],
                preset="tiny",
                retry=RetryPolicy(attempts=2, base=0.0, jitter=0.0),
            )
        assert excinfo.value.attempts == 2

    def test_worker_crash_respawns_pool_and_completes(
        self, tmp_path, monkeypatch
    ):
        """An os._exit mid-job breaks the whole pool; the supervisor must
        respawn it, retry the lost jobs, and still complete the matrix."""
        session = Session(cache_dir=tmp_path / "cache", preset="tiny")
        _arm(monkeypatch, tmp_path, "worker_crash:job=dec:count=1")
        with events.capture() as log:
            evaluations = session.run_matrix(
                ["adder", "dec", "ctrl", "bar"], ["naive"], parallel=2
            )
        assert len(evaluations) == 4
        assert all(ev.results for ev in evaluations)
        kinds = [e["kind"] for e in log]
        assert "pool_respawn" in kinds
        respawn = next(e for e in log if e["kind"] == "pool_respawn")
        assert "dec" in respawn["jobs"]
        assert any(
            e["kind"] == "retry" and e["job"] == "dec" for e in log
        )

    def test_worker_hang_hits_job_deadline(self, tmp_path, monkeypatch):
        _arm(
            monkeypatch, tmp_path,
            "worker_hang:job=adder:count=1:seconds=30",
        )
        session = Session(
            cache_dir=tmp_path / "cache", preset="tiny", timeouts="job=1"
        )
        with pytest.raises(StageTimeoutError) as excinfo:
            session.run_matrix(["adder", "dec"], ["naive"], parallel=2)
        assert excinfo.value.stage == "job"

    def test_faulted_parallel_matches_fault_free_serial(
        self, tmp_path, monkeypatch
    ):
        """ISSUE acceptance: a parallel run surviving an injected worker
        crash, an injected kernel fault, and a corrupted cache entry must
        produce artefacts byte-identical to a fault-free serial run, with
        every run manifest validating and the recovery events on record."""
        pytest.importorskip("numpy")
        benchmarks = ["adder", "dec", "ctrl", "bar"]
        configs = ["naive", "ea-full"]

        serial_root = tmp_path / "serial-cache"
        serial = Session(
            backend="numpy", cache_dir=serial_root, preset="tiny"
        ).run_matrix(benchmarks, configs, verify=True, verify_patterns=256)

        # The kernel fault targets 'bar', which is only scheduled after
        # the pool respawn: a directive aimed at a job in flight beside
        # the crashing one can have its single ledger slot claimed by a
        # worker that is then SIGTERM'd before recording the event —
        # the budget is spent, and no degradation is ever observed.
        _arm(
            monkeypatch, tmp_path,
            "worker_crash:job=dec:count=1,"
            "kernel_fail:job=bar:count=1,"
            "cache_corrupt:job=ctrl:count=1",
        )
        faulted_root = tmp_path / "faulted-cache"
        with events.capture() as log:
            faulted = Session(
                backend="numpy", cache_dir=faulted_root, preset="tiny"
            ).run_matrix(
                benchmarks, configs, verify=True, verify_patterns=256,
                parallel=2,
            )
            # second pass over the warm cache: the corruption directive
            # garbles one read, which must degrade to a miss + recompute
            warm = Session(
                backend="numpy", cache_dir=faulted_root, preset="tiny"
            ).run_matrix(benchmarks, configs, verify=True, verify_patterns=256)

        # the matrix completed and matches the fault-free reference
        for reference, survivor, rewarmed in zip(serial, faulted, warm):
            assert _result_signature(survivor) == _result_signature(reference)
            assert _result_signature(rewarmed) == _result_signature(reference)

        # artefacts are byte-identical to the fault-free serial run
        assert _artefact_digests(faulted_root) == _artefact_digests(
            serial_root
        )

        # the crash and the corruption were actually injected + recovered
        injected = {
            e["point"] for e in log if e["kind"] == "fault_injected"
        }
        assert "cache_corrupt" in injected
        assert any(e["kind"] == "pool_respawn" for e in log)

        # every run manifest validates, and the recovery history is there
        manifests = list(iter_manifests(faulted_root))
        assert manifests
        for path, manifest in manifests:
            assert verify_manifest(path, manifest) == []
        event_kinds = {
            e["kind"]
            for _, manifest in manifests
            for e in manifest.get("events", [])
        }
        assert "retry" in event_kinds  # the crashed job's retries
        assert "kernel_degraded" in event_kinds  # the demoted kernel
