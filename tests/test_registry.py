"""Tests for the benchmark registry."""

import pytest

from repro.synth.registry import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    build_benchmark,
    build_suite,
)


class TestRegistry:
    def test_all_18_paper_benchmarks_present(self):
        expected = {
            "adder", "bar", "div", "log2", "max", "multiplier", "sin",
            "sqrt", "square", "cavlc", "ctrl", "dec", "i2c", "int2float",
            "mem_ctrl", "priority", "router", "voter",
        }
        assert set(BENCHMARK_ORDER) == expected
        assert len(BENCHMARK_ORDER) == 18

    def test_order_matches_paper_table(self):
        assert BENCHMARK_ORDER[0] == "adder"
        assert BENCHMARK_ORDER[-1] == "voter"
        # arithmetic block first, control block second
        assert BENCHMARK_ORDER.index("square") < BENCHMARK_ORDER.index("cavlc")

    def test_every_spec_has_three_presets(self):
        for spec in BENCHMARKS.values():
            assert set(spec.presets) == {"tiny", "default", "paper"}

    def test_paper_pi_po_recorded(self):
        assert BENCHMARKS["adder"].paper_pi == 256
        assert BENCHMARKS["adder"].paper_po == 129
        assert BENCHMARKS["mem_ctrl"].paper_pi == 1204
        assert BENCHMARKS["voter"].paper_pi == 1001

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            build_benchmark("nonesuch")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            build_benchmark("adder", preset="huge")

    def test_overrides(self):
        mig = build_benchmark("adder", preset="tiny", width=5)
        assert mig.num_pis == 10

    def test_name_assigned(self):
        assert build_benchmark("bar", preset="tiny").name == "bar"

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_tiny_preset_builds(self, name):
        mig = build_benchmark(name, preset="tiny")
        assert mig.num_pis > 0
        assert mig.num_pos > 0
        assert mig.num_live_gates() > 0

    def test_paper_interfaces_match_table1(self):
        """For exactly-shaped benchmarks the paper preset reproduces the
        paper's PI/PO columns."""
        for name in ("adder", "bar", "div", "max", "multiplier", "sin",
                     "sqrt", "square", "dec", "int2float", "priority",
                     "voter", "i2c", "mem_ctrl", "router", "cavlc", "ctrl"):
            spec = BENCHMARKS[name]
            params = spec.presets["paper"]
            # don't build the giant ones; check declared params only
            if name in ("adder", "bar", "dec", "int2float", "router",
                        "cavlc", "ctrl"):
                mig = spec.build("paper")
                assert mig.num_pis == spec.paper_pi, name
                assert mig.num_pos == spec.paper_po, name

    def test_build_suite_subset(self):
        suite = build_suite(preset="tiny", names=["dec", "ctrl"])
        assert [name for name, _ in suite] == ["dec", "ctrl"]
