"""Tests for the naive-translation (elaborated) construction mode."""

from repro.mig.graph import Mig
from repro.mig.simulate import equivalent, truth_tables
from repro.synth.elaborate import ElaboratingMig, new_mig


class TestElaboratingMig:
    def test_no_structural_hashing(self):
        mig = ElaboratingMig()
        a, b = mig.add_pi(), mig.add_pi()
        f1 = mig.add_and(a, b)
        f2 = mig.add_and(a, b)
        assert f1 != f2

    def test_or_becomes_nand_of_complements(self):
        mig = ElaboratingMig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.add_or(a, b)
        mig.add_po(f, "f")
        # functionally an OR ...
        assert truth_tables(mig) == [0b1110]
        # ... but structurally a complemented AND node
        from repro.mig.signal import is_complemented, node_of

        assert is_complemented(f)
        fa, fb, fc = mig.fanins(node_of(f))
        assert min(fa, fb, fc) == 0  # the AND constant

    def test_majority_decomposes(self):
        mig = ElaboratingMig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        f = mig.add_maj(a, b, c)
        mig.add_po(f, "f")
        assert mig.num_gates == 4  # ab, a+b, (a+b)c, or
        assert truth_tables(mig) == [0b11101000]

    def test_identities_still_simplify(self):
        mig = ElaboratingMig()
        a, c = mig.add_pi(), mig.add_pi()
        assert mig.add_maj(a, a, c) == a
        assert mig.num_gates == 0

    def test_equivalent_to_native(self):
        def build(mig):
            a, b, c, d = (mig.add_pi(n) for n in "abcd")
            f = mig.add_maj(mig.add_xor(a, b), mig.add_or(c, d), a)
            mig.add_po(f, "f")
            return mig

        native = build(Mig())
        elaborated = build(ElaboratingMig())
        assert equivalent(native, elaborated)
        assert elaborated.num_gates > native.num_gates

    def test_factory(self):
        assert isinstance(new_mig("x", True), ElaboratingMig)
        built = new_mig("x", False)
        assert isinstance(built, Mig)
        assert not isinstance(built, ElaboratingMig)
        assert built.use_strash

    def test_rewriting_recovers_sharing(self):
        """Rewriting an elaborated graph with structural hashing merges
        the duplicates naive translation left behind."""
        from repro.mig.rewrite import majority_pass

        mig = ElaboratingMig()
        a, b = mig.add_pi(), mig.add_pi()
        f1 = mig.add_and(a, b)
        f2 = mig.add_and(a, b)
        mig.add_po(mig.add_or(f1, f2))
        rewritten = majority_pass(mig)
        assert rewritten.num_live_gates() < mig.num_live_gates()
        assert equivalent(mig, rewritten)
