"""Tests for write-traffic statistics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stats import (
    WriteTrafficStats,
    average_improvement,
    gini_coefficient,
    improvement_percent,
    normalized_stdev,
    write_histogram,
)

counts_lists = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=60
)


class TestWriteTrafficStats:
    def test_basic(self):
        stats = WriteTrafficStats.from_counts([0, 2, 4])
        assert stats.num_devices == 3
        assert stats.total_writes == 6
        assert stats.min_writes == 0
        assert stats.max_writes == 4
        assert stats.mean == 2.0
        assert math.isclose(stats.stdev, math.sqrt(8 / 3))

    def test_empty(self):
        stats = WriteTrafficStats.from_counts([])
        assert stats.num_devices == 0
        assert stats.stdev == 0.0

    def test_single_device(self):
        stats = WriteTrafficStats.from_counts([7])
        assert stats.stdev == 0.0
        assert stats.sample_stdev == 0.0

    @settings(max_examples=40, deadline=None)
    @given(counts=counts_lists)
    def test_matches_statistics_module(self, counts):
        import statistics

        stats = WriteTrafficStats.from_counts(counts)
        assert math.isclose(
            stats.stdev, statistics.pstdev(counts), abs_tol=1e-9
        )
        if len(counts) > 1:
            assert math.isclose(
                stats.sample_stdev, statistics.stdev(counts), abs_tol=1e-9
            )

    def test_improvement_over(self):
        base = WriteTrafficStats.from_counts([0, 10])  # stdev 5
        better = WriteTrafficStats.from_counts([4, 6])  # stdev 1
        assert math.isclose(better.improvement_over(base), 80.0)
        assert better.improvement_over(
            WriteTrafficStats.from_counts([3, 3])
        ) == 0.0  # zero baseline -> 0 by convention

    def test_negative_improvement_possible(self):
        base = WriteTrafficStats.from_counts([4, 6])
        worse = WriteTrafficStats.from_counts([0, 10])
        assert worse.improvement_over(base) < 0

    def test_lifetime_gain(self):
        base = WriteTrafficStats.from_counts([100, 1])
        flat = WriteTrafficStats.from_counts([10, 10])
        assert flat.lifetime_gain_over(base) == 10.0
        zero = WriteTrafficStats.from_counts([0, 0])
        assert zero.lifetime_gain_over(base) == float("inf")

    def test_describe(self):
        text = WriteTrafficStats.from_counts([1, 3]).describe()
        assert "1/3" in text and "2 devices" in text


class TestHelpers:
    def test_improvement_percent(self):
        assert improvement_percent(10.0, 5.0) == 50.0
        assert improvement_percent(0.0, 5.0) == 0.0
        assert improvement_percent(5.0, 10.0) == -100.0

    def test_average_improvement_matches_paper_semantics(self):
        # the paper averages per-benchmark percentages
        base = [10.0, 100.0]
        new = [5.0, 90.0]
        assert math.isclose(average_improvement(base, new), (50 + 10) / 2)

    def test_average_improvement_length_check(self):
        with pytest.raises(ValueError):
            average_improvement([1.0], [1.0, 2.0])
        assert average_improvement([], []) == 0.0

    def test_gini_extremes(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)
        skewed = gini_coefficient([100, 0, 0, 0])
        assert skewed > 0.7
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(counts=counts_lists)
    def test_gini_in_unit_interval(self, counts):
        g = gini_coefficient(counts)
        assert -1e-9 <= g <= 1.0

    def test_normalized_stdev(self):
        assert normalized_stdev([2, 2, 2]) == 0.0
        assert normalized_stdev([0, 0]) is None

    def test_write_histogram(self):
        hist = write_histogram([0, 1, 9, 9, 9], bins=5)
        assert sum(hist) == 5
        assert hist[-1] == 3
        assert write_histogram([], bins=4) == [0, 0, 0, 0]
        assert write_histogram([0, 0], bins=4)[0] == 2
