"""Unit tests for the Mig data structure."""

import pytest

from repro.mig.graph import Mig
from repro.mig.signal import CONST0, CONST1, complement, node_of
from repro.mig.simulate import truth_tables


@pytest.fixture
def abc_mig():
    mig = Mig("abc")
    a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    return mig, a, b, c


class TestConstruction:
    def test_empty(self):
        mig = Mig()
        assert mig.num_pis == 0
        assert mig.num_pos == 0
        assert mig.num_gates == 0
        assert mig.num_nodes == 1  # the constant node

    def test_pi_names(self, abc_mig):
        mig, *_ = abc_mig
        assert [mig.pi_name(i) for i in range(3)] == ["a", "b", "c"]

    def test_add_pis_bulk(self):
        mig = Mig()
        sigs = mig.add_pis(4, prefix="in")
        assert len(sigs) == 4
        assert mig.pi_name(2) == "in2"

    def test_maj_allocates(self, abc_mig):
        mig, a, b, c = abc_mig
        f = mig.add_maj(a, b, c)
        assert mig.num_gates == 1
        assert mig.is_gate(node_of(f))

    def test_po_returns_index(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.add_po(a, "f") == 0
        assert mig.add_po(b) == 1
        assert mig.po_name(1) == "po1"

    def test_bad_signal_rejected(self, abc_mig):
        mig, *_ = abc_mig
        with pytest.raises(ValueError):
            mig.add_maj(2, 4, 999)
        with pytest.raises(ValueError):
            mig.add_po(999)

    def test_fanins_of_non_gate_raises(self, abc_mig):
        mig, a, *_ = abc_mig
        with pytest.raises(ValueError):
            mig.fanins(node_of(a))


class TestCreationIdentities:
    """Omega.M is applied at creation time."""

    def test_two_equal_operands_decide(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.add_maj(a, a, c) == a
        assert mig.add_maj(a, c, a) == a
        assert mig.add_maj(c, a, a) == a
        assert mig.num_gates == 0

    def test_complementary_pair_forwards_third(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.add_maj(a, complement(a), c) == c
        assert mig.add_maj(c, a, complement(a)) == c
        assert mig.num_gates == 0

    def test_constant_pairs(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.add_maj(CONST0, CONST1, c) == c  # complements
        assert mig.add_maj(CONST0, CONST0, c) == CONST0
        assert mig.add_maj(CONST1, CONST1, c) == CONST1

    def test_equal_complemented_operands(self, abc_mig):
        mig, a, b, c = abc_mig
        na = complement(a)
        assert mig.add_maj(na, na, c) == na


class TestStructuralHashing:
    def test_commutative_sharing(self, abc_mig):
        mig, a, b, c = abc_mig
        f1 = mig.add_maj(a, b, c)
        f2 = mig.add_maj(c, a, b)
        f3 = mig.add_maj(b, c, a)
        assert f1 == f2 == f3
        assert mig.num_gates == 1

    def test_different_polarity_not_shared(self, abc_mig):
        mig, a, b, c = abc_mig
        f1 = mig.add_maj(a, b, c)
        f2 = mig.add_maj(complement(a), b, c)
        assert f1 != f2
        assert mig.num_gates == 2

    def test_strash_disabled_duplicates(self):
        mig = Mig(use_strash=False)
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        f1 = mig.add_maj(a, b, c)
        f2 = mig.add_maj(a, b, c)
        assert f1 != f2
        assert mig.num_gates == 2

    def test_maj_would_allocate(self, abc_mig):
        mig, a, b, c = abc_mig
        assert mig.maj_would_allocate(a, b, c)
        mig.add_maj(a, b, c)
        assert not mig.maj_would_allocate(a, b, c)
        assert not mig.maj_would_allocate(a, a, c)  # identity
        assert not mig.maj_would_allocate(a, complement(a), c)


class TestGateHelpers:
    def test_and_or_truth(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_and(a, b), "and")
        mig.add_po(mig.add_or(a, b), "or")
        mig.add_po(mig.add_xor(a, b), "xor")
        mig.add_po(mig.add_nand(a, b), "nand")
        mig.add_po(mig.add_nor(a, b), "nor")
        mig.add_po(mig.add_xnor(a, b), "xnor")
        tables = truth_tables(mig)
        # variable order: a is bit0 of the minterm index; patterns 0..3
        assert tables[0] == 0b1000  # and
        assert tables[1] == 0b1110  # or
        assert tables[2] == 0b0110  # xor
        assert tables[3] == 0b0111  # nand
        assert tables[4] == 0b0001  # nor
        assert tables[5] == 0b1001  # xnor

    def test_mux(self):
        mig = Mig()
        s, t, e = mig.add_pi("s"), mig.add_pi("t"), mig.add_pi("e")
        mig.add_po(mig.add_mux(s, t, e), "f")
        (table,) = truth_tables(mig)
        for m in range(8):
            s_v, t_v, e_v = m & 1, (m >> 1) & 1, (m >> 2) & 1
            expected = t_v if s_v else e_v
            assert (table >> m) & 1 == expected

    def test_maj_n_equals_majority(self):
        mig = Mig()
        xs = [mig.add_pi(f"x{i}") for i in range(5)]
        mig.add_po(mig.add_maj_n(xs), "f")
        (table,) = truth_tables(mig)
        for m in range(32):
            expected = 1 if bin(m).count("1") >= 3 else 0
            assert (table >> m) & 1 == expected

    def test_maj_n_rejects_even(self):
        mig = Mig()
        xs = [mig.add_pi() for _ in range(4)]
        with pytest.raises(ValueError):
            mig.add_maj_n(xs)

    def test_maj_n_single(self):
        mig = Mig()
        x = mig.add_pi()
        assert mig.add_maj_n([x]) == x


class TestTraversal:
    def test_levels_and_depth(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi() for _ in range(4))
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(f, c, d)
        mig.add_po(g)
        levels = mig.levels()
        assert levels[node_of(f)] == 1
        assert levels[node_of(g)] == 2
        assert mig.depth() == 2

    def test_live_mask_excludes_dead(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        dead = mig.add_maj(a, b, c)
        live = mig.add_maj(a, b, complement(c))
        mig.add_po(live)
        mask = mig.live_mask()
        assert not mask[node_of(dead)]
        assert mask[node_of(live)]
        assert mask[0] and mask[node_of(a)]  # constant and PIs stay live

    def test_fanout_counts(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        f = mig.add_maj(a, b, c)
        g = mig.add_maj(f, a, complement(b))
        mig.add_po(g)
        mig.add_po(f)
        counts = mig.fanout_counts()
        assert counts[node_of(f)] == 2  # used by g and one PO
        assert counts[node_of(a)] == 2
        assert counts[node_of(g)] == 1

    def test_complement_histogram(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        n0 = mig.add_maj(a, b, c)
        n1 = mig.add_maj(complement(a), b, c)
        n3 = mig.add_maj(complement(a), complement(b), complement(c))
        mig.add_po(n0)
        mig.add_po(n1)
        mig.add_po(n3)
        assert mig.complement_histogram() == [1, 1, 0, 1]


class TestCopying:
    def test_clone_independent(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, c))
        other = mig.clone()
        other.add_pi("extra")
        assert other.num_pis == mig.num_pis + 1

    def test_cleanup_drops_dead_gates(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_maj(a, b, c)  # dead
        mig.add_po(mig.add_maj(a, b, complement(c)))
        cleaned = mig.cleanup()
        assert cleaned.num_gates == 1
        assert cleaned.num_pis == 3  # PIs preserved

    def test_cleanup_preserves_function(self, small_random_mig):
        from repro.mig.simulate import equivalent

        cleaned = small_random_mig.cleanup()
        assert equivalent(small_random_mig, cleaned)

    def test_cleanup_preserves_strash_mode(self):
        mig = Mig(use_strash=False)
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.add_maj(a, b, c))
        mig.add_po(mig.add_maj(a, b, c))
        cleaned = mig.cleanup()
        assert not cleaned.use_strash
        assert cleaned.num_gates == 2  # duplicates kept

    def test_dump_contains_structure(self, abc_mig):
        mig, a, b, c = abc_mig
        mig.add_po(mig.add_maj(a, b, complement(c)), "f")
        text = mig.dump()
        assert "input a" in text
        assert "output f" in text
        assert "~" in text


class TestMemoization:
    """Derived traversal state is cached and invalidated on mutation."""

    def _build(self):
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "f")
        return mig, (a, b, c)

    def test_derived_state_is_cached(self):
        mig, _ = self._build()
        assert mig._live_mask() is mig._live_mask()
        assert mig.flat_gates() is mig.flat_gates()
        assert mig.fanout_view() is mig.fanout_view()

    def test_public_views_are_defensive_copies(self):
        mig, _ = self._build()
        mig.live_mask()[0] = False
        counts = mig.fanout_counts()
        counts[0] += 99
        assert mig.live_mask()[0] is True
        assert mig.fanout_counts() != counts

    def test_add_maj_invalidates(self):
        mig, (a, b, c) = self._build()
        before = mig.flat_gates()
        assert mig.num_live_gates() == 1
        g = mig.add_maj(a, complement(b), c)
        mig.add_po(g, "g")
        after = mig.flat_gates()
        assert after is not before
        assert len(after) == 2
        assert mig.num_live_gates() == 2

    def test_add_po_invalidates_liveness(self):
        mig, (a, b, c) = self._build()
        dead = mig.add_maj(a, complement(b), complement(c))
        node = dead >> 1
        assert not mig.live_mask()[node]  # dead: no PO reaches it
        mig.add_po(dead, "g")
        assert mig.live_mask()[node]
        assert mig.fanout_counts()[node] == 1

    def test_add_pi_invalidates(self):
        mig, _ = self._build()
        n_before = len(mig.live_mask())
        mig.add_pi("late")
        assert len(mig.live_mask()) == n_before + 1

    def test_non_allocating_add_maj_keeps_cache(self):
        mig, (a, b, c) = self._build()
        cached = mig.flat_gates()
        assert mig.add_maj(a, b, c) == mig.add_maj(b, a, c)  # strash hit
        assert mig.add_maj(a, a, b) == a  # Omega.M identity
        assert mig.flat_gates() is cached

    def test_simulation_consistent_across_mutation(self):
        mig, (a, b, c) = self._build()
        from repro.mig.simulate import truth_tables

        assert truth_tables(mig) == [0b11101000]
        mig.add_po(mig.add_xor(a, b), "x")
        assert truth_tables(mig) == [0b11101000, 0b01100110]

    def test_pickle_drops_derived_state(self):
        import pickle

        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "f")
        mig.flat_gates()
        mig.fanout_view()
        assert mig._derived
        back = pickle.loads(pickle.dumps(mig))
        assert back._derived == {}  # receivers rebuild derived state
        assert back.flat_gates() == mig.flat_gates()
        assert back._fanins == mig._fanins

    def test_strash_key_agreement_with_probe(self):
        # add_maj's inline canonicalization and maj_would_allocate's
        # sorted_fanins() probe must key the same strash table.
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        for ops in [(a, b, c), (complement(c), b, a), (b, complement(a), c)]:
            assert mig.maj_would_allocate(*ops)
            sig = mig.add_maj(*ops)
            for perm in [(ops[2], ops[0], ops[1]), (ops[1], ops[2], ops[0])]:
                assert not mig.maj_would_allocate(*perm)
                assert mig.add_maj(*perm) == sig
