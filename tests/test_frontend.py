"""Tests for the Python-AST frontend (:mod:`repro.synth.frontend`).

The central property: for every decorated function, the compiled MIG
agrees with the plain Python call on *every* input combination, on both
simulation backends.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.mig import kernel
from repro.mig.simulate import simulate_one
from repro.synth.frontend import (
    FrontendError,
    FrontendFunction,
    mig_function,
)


@pytest.fixture(params=["bigint", "numpy"])
def backend(request):
    if request.param not in kernel.available_backends():
        pytest.skip(f"{request.param} backend unavailable")
    kernel.set_backend(request.param)
    yield request.param
    kernel.set_backend(None)


def circuit_eval(ff: FrontendFunction, *args: int):
    """Simulate the compiled circuit on integer inputs, LSB-first words."""
    mig = ff.build()
    assignment = {}
    for value, (param, width) in zip(args, ff.input_widths.items()):
        for i in range(width):
            assignment[f"{param}{i}"] = (value >> i) & 1
    out = simulate_one(mig, assignment)
    values = []
    po_index = 0
    for width in ff.output_widths:
        word = 0
        for i in range(width):
            word |= out[mig.po_name(po_index)] << i
            po_index += 1
        values.append(word)
    return tuple(values) if len(values) > 1 else values[0]


def assert_matches_python(ff: FrontendFunction, *arg_ranges):
    """Exhaustively compare circuit vs ``ff.reference`` over the ranges."""
    if len(arg_ranges) == 1:
        for a in arg_ranges[0]:
            assert circuit_eval(ff, a) == ff.reference(a), f"a={a}"
    elif len(arg_ranges) == 2:
        for a in arg_ranges[0]:
            for b in arg_ranges[1]:
                assert circuit_eval(ff, a, b) == ff.reference(a, b), (
                    f"a={a} b={b}"
                )
    else:  # pragma: no cover - not used
        raise AssertionError("unsupported arity")


class TestArithmetic:
    def test_adder_exhaustive(self, backend):
        @mig_function(width=4)
        def add(a, b):
            return a + b

        assert_matches_python(add, range(16), range(16))

    def test_subtraction_wraps(self, backend):
        @mig_function(width=3)
        def sub(a, b):
            return a - b

        # two's-complement wrap at 3 bits == Python result masked
        assert_matches_python(sub, range(8), range(8))

    def test_multiplier_mixed_widths(self, backend):
        @mig_function(a=3, b=2)
        def mul(a, b):
            return a * b

        assert_matches_python(mul, range(8), range(4))

    def test_negate(self, backend):
        @mig_function(width=3)
        def neg(a):
            return -a

        assert_matches_python(neg, range(8))

    def test_shifts_and_bitwise(self, backend):
        @mig_function(width=4)
        def mash(a, b):
            t = (a << 1) ^ (b >> 1)
            return (t & a) | ~b

        assert_matches_python(mash, range(16), range(16))

    def test_augmented_assignment(self, backend):
        @mig_function(width=3)
        def accumulate(a, b):
            t = a
            t ^= b
            t &= a
            return t

        assert_matches_python(accumulate, range(8), range(8))


class TestControl:
    def test_clamped_diff(self, backend):
        @mig_function(width=4)
        def clamped_diff(a, b):
            big = a if a >= b else b
            small = b if a >= b else a
            return big - small

        assert_matches_python(clamped_diff, range(16), range(16))

    def test_comparisons(self, backend):
        @mig_function(width=3)
        def compare(a, b):
            lt = a < b
            ge = a >= b
            eq = a == b
            ne = a != b
            gt = a > b
            le = a <= b
            return lt, ge, eq, ne, gt, le

        assert_matches_python(compare, range(8), range(8))

    def test_boolean_connectives(self, backend):
        @mig_function(width=3)
        def in_band(a, b):
            low = a > 1
            high = a < 6
            match = a == b
            return (low and high) or not match

        assert_matches_python(in_band, range(8), range(8))

    def test_constants_and_bool_literals(self, backend):
        @mig_function(width=4)
        def offset(a):
            return a + 5 if a < 10 else a & 3

        assert_matches_python(offset, range(16))


class TestOutputs:
    def test_tuple_outputs_named_after_variables(self):
        @mig_function(width=2)
        def pair(a, b):
            total = a + b
            same = a == b
            return total, same

        mig = pair.build()
        assert pair.output_widths == [3, 1]
        names = [mig.po_name(i) for i in range(mig.num_pos)]
        assert names == ["total0", "total1", "total2", "same0"]

    def test_anonymous_outputs(self):
        @mig_function(width=2)
        def anon(a, b):
            return a ^ b, a & b

        mig = anon.build()
        assert mig.po_name(0).startswith("out0")
        assert_matches_python(anon, range(4), range(4))

    def test_reference_masks_to_circuit_widths(self):
        @mig_function(width=3)
        def sub(a, b):
            return a - b

        sub.build()
        assert sub(1, 3) == -2  # plain Python, unchanged
        assert sub.reference(1, 3) == (-2) & 0b111


class TestIdentity:
    def test_fingerprint_stable_and_width_sensitive(self):
        def body(a, b):
            return a + b

        four = mig_function(width=4)(body)
        four_again = mig_function(width=4)(body)
        eight = mig_function(width=8)(body)
        assert four.fingerprint == four_again.fingerprint
        assert four.fingerprint != eight.fingerprint

    def test_fingerprint_available_before_build(self):
        @mig_function(width=4)
        def late(a):
            return a + 1

        assert len(late.fingerprint) == 64
        assert late._built is None

    def test_pickle_ships_compiled_graph_not_callable(self):
        @mig_function(width=3)
        def shipped(a, b):
            return a & b

        clone = pickle.loads(pickle.dumps(shipped))
        assert clone.build().num_pis == 6
        assert clone.fingerprint == shipped.fingerprint
        with pytest.raises(FrontendError, match="unpickled"):
            clone(1, 2)

    def test_majority_native_mode_equivalent(self, backend):
        def body(a, b):
            return (a + b) & a

        aig_style = mig_function(width=3)(body)
        native = mig_function(width=3, elaborated=False)(body)
        assert aig_style.fingerprint != native.fingerprint
        for a in range(8):
            for b in range(8):
                assert circuit_eval(aig_style, a, b) == circuit_eval(
                    native, a, b
                )


class TestErrors:
    def test_missing_width(self):
        @mig_function(a=4)
        def partial(a, b):
            return a + b

        with pytest.raises(FrontendError, match="no width declared"):
            partial.build()

    def test_unknown_parameter_width(self):
        with pytest.raises(FrontendError, match="unknown"):

            @mig_function(width=4, c=2)
            def known(a, b):
                return a + b

    def test_non_positive_width(self):
        with pytest.raises(FrontendError, match="positive"):

            @mig_function(width=0)
            def flat(a):
                return a

    def test_unsupported_statement(self):
        @mig_function(width=2)
        def looping(a):
            for _ in range(2):
                a = a + 1
            return a

        with pytest.raises(FrontendError, match="unsupported statement"):
            looping.build()

    def test_unknown_name(self):
        @mig_function(width=2)
        def ghost(a):
            return a + q  # noqa: F821

        with pytest.raises(FrontendError, match="unknown name 'q'"):
            ghost.build()

    def test_chained_comparison(self):
        @mig_function(width=2)
        def chained(a, b):
            return 0 < a < b

        with pytest.raises(FrontendError, match="chained"):
            chained.build()

    def test_variable_shift_amount(self):
        @mig_function(width=2)
        def varshift(a, b):
            return a << b

        with pytest.raises(FrontendError, match="constant"):
            varshift.build()

    def test_non_integer_constant(self):
        @mig_function(width=2)
        def fractional(a):
            return a & 1.5

        with pytest.raises(FrontendError, match="integer constants"):
            fractional.build()

    def test_wide_condition(self):
        @mig_function(width=2)
        def wide(a, b):
            return a if b else a + 1

        with pytest.raises(FrontendError, match="1-bit condition"):
            wide.build()

    def test_return_not_last(self):
        @mig_function(width=2)
        def early(a):
            return a
            a = a + 1  # pragma: no cover

        with pytest.raises(FrontendError, match="last statement"):
            early.build()

    def test_error_names_line(self):
        @mig_function(width=2)
        def located(a):
            b = a @ a
            return b

        with pytest.raises(FrontendError, match=r"line \d+"):
            located.build()


FUZZ_WIDTH = 3


def exact_expr_strategy():
    """Expressions whose circuit value equals the plain Python value.

    Restricted to operations that are exact on non-negative inputs (no
    width-truncating operator inside a wider context): ``+``/``*`` widen,
    ``&``/``|``/``^`` are bitwise over equal widths, ``>> k`` is Python
    ``// 2**k``, comparisons and muxes see exact operands.
    """
    atoms = st.sampled_from(
        ["a", "b", "0", "1", "5", str((1 << FUZZ_WIDTH) - 1)]
    )

    def extend(children):
        binop = st.tuples(
            children,
            st.sampled_from(["+", "*", "&", "|", "^"]),
            children,
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        shift = st.tuples(
            children, st.integers(0, 2)
        ).map(lambda t: f"({t[0]} >> {t[1]})")
        compare = st.tuples(
            children,
            st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
            children,
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        mux = st.tuples(compare, children, children).map(
            lambda t: f"({t[1]} if {t[0]} else {t[2]})"
        )
        return binop | shift | mux

    return st.recursive(atoms, extend, max_leaves=6)


def bitwise_expr_strategy():
    # ~ is sound in a pure-bitwise context: Python's infinite-width
    # two's complement agrees bit-by-bit after the output mask.
    return st.recursive(
        st.sampled_from(["a", "b", "5"]),
        lambda children: st.tuples(
            children,
            st.sampled_from(["&", "|", "^"]),
            children,
        ).map(lambda t: f"({t[0]} {t[1]} {t[2]})")
        | children.map(lambda e: f"(~{e})"),
        max_leaves=6,
    )


class TestGeneratedFrontends:
    """Hypothesis-driven fuzzing of the AST frontend.

    Random expression *source text* is built from an exact-valued
    grammar, compiled through the same exec-plus-``linecache`` path a
    served inline frontend takes, and checked exhaustively against
    ``reference`` over both 3-bit inputs.
    """

    @staticmethod
    def build_frontend(expr: str, width: int) -> FrontendFunction:
        import hashlib
        import linecache

        source = (
            f"@mig_function(width={width})\n"
            f"def fuzzed(a, b):\n"
            f"    return {expr}\n"
        )
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]
        filename = f"<fuzz:{digest}>"
        code = compile(source, filename, "exec")
        linecache.cache[filename] = (
            len(source), None, source.splitlines(True), filename
        )
        namespace = {"mig_function": mig_function}
        exec(code, namespace)
        return namespace["fuzzed"]

    def check(self, expr: str) -> None:
        fuzzed = self.build_frontend(expr, FUZZ_WIDTH)
        for a in range(1 << FUZZ_WIDTH):
            for b in range(1 << FUZZ_WIDTH):
                assert circuit_eval(fuzzed, a, b) == \
                    fuzzed.reference(a, b), f"{expr} at a={a} b={b}"

    @settings(max_examples=25, deadline=None)
    @given(expr=exact_expr_strategy())
    def test_exact_expressions_match_python(self, expr):
        self.check(expr)

    @settings(max_examples=15, deadline=None)
    @given(parts=st.lists(exact_expr_strategy(), min_size=2, max_size=3))
    def test_tuple_outputs_match_python(self, parts):
        self.check(", ".join(parts))

    @settings(max_examples=15, deadline=None)
    @given(expr=bitwise_expr_strategy())
    def test_bitwise_with_inversion_matches_python(self, expr):
        self.check(expr)
