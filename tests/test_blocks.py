"""Bit-exact tests of the word-level building blocks against Python ints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mig.graph import Mig
from repro.mig.simulate import simulate
from repro.synth import blocks

WIDTH = 8
word_values = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


def eval_block(build, num_words, width=WIDTH, extra_bits=0):
    """Build a block over fresh PI words and return an evaluator."""
    mig = Mig()
    words = [
        [mig.add_pi(f"w{k}_{i}") for i in range(width)]
        for k in range(num_words)
    ]
    bits = [mig.add_pi(f"e{i}") for i in range(extra_bits)]
    outputs = build(mig, words, bits)
    for i, sig in enumerate(outputs):
        mig.add_po(sig, f"o{i}")

    def run(values, extra=0):
        pi = []
        for v in values:
            pi.extend((v >> i) & 1 for i in range(width))
        pi.extend((extra >> i) & 1 for i in range(extra_bits))
        outs = simulate(mig, pi)
        return sum(bit << i for i, bit in enumerate(outs))

    return run


class TestConstantsAndShaping:
    def test_constant_word_roundtrip(self):
        word = blocks.constant_word(0b1011, 6)
        assert [b & 1 for b in word] == [1, 1, 0, 1, 0, 0]

    def test_zero_extend(self):
        word = blocks.constant_word(3, 2)
        assert len(blocks.zero_extend(word, 5)) == 5
        with pytest.raises(ValueError):
            blocks.zero_extend(word, 1)

    def test_truncate(self):
        word = blocks.constant_word(0b111, 3)
        assert len(blocks.truncate(word, 2)) == 2

    def test_width_mismatch_rejected(self):
        mig = Mig()
        a = [mig.add_pi() for _ in range(3)]
        b = [mig.add_pi() for _ in range(2)]
        with pytest.raises(ValueError):
            blocks.and_word(mig, a, b)


class TestArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(a=word_values, b=word_values)
    def test_ripple_add(self, a, b):
        run = eval_block(
            lambda m, w, e: (lambda s: s[0] + [s[1]])(
                blocks.ripple_add(m, w[0], w[1])
            ),
            2,
        )
        assert run([a, b]) == a + b

    @settings(max_examples=40, deadline=None)
    @given(a=word_values, b=word_values)
    def test_ripple_sub(self, a, b):
        run = eval_block(
            lambda m, w, e: (lambda s: s[0] + [s[1]])(
                blocks.ripple_sub(m, w[0], w[1])
            ),
            2,
        )
        got = run([a, b])
        diff = got & ((1 << WIDTH) - 1)
        borrow = got >> WIDTH
        assert diff == (a - b) & ((1 << WIDTH) - 1)
        assert borrow == (1 if a < b else 0)

    @settings(max_examples=30, deadline=None)
    @given(a=word_values)
    def test_increment_and_negate(self, a):
        run = eval_block(
            lambda m, w, e: blocks.increment(m, w[0])[0], 1
        )
        assert run([a]) == (a + 1) & ((1 << WIDTH) - 1)
        run2 = eval_block(lambda m, w, e: blocks.negate(m, w[0]), 1)
        assert run2([a]) == (-a) & ((1 << WIDTH) - 1)

    @settings(max_examples=40, deadline=None)
    @given(a=word_values, b=word_values)
    def test_comparisons(self, a, b):
        run = eval_block(
            lambda m, w, e: [
                blocks.less_than(m, w[0], w[1]),
                blocks.greater_equal(m, w[0], w[1]),
                blocks.equals_word(m, w[0], w[1]),
            ],
            2,
        )
        got = run([a, b])
        assert got & 1 == (1 if a < b else 0)
        assert (got >> 1) & 1 == (1 if a >= b else 0)
        assert (got >> 2) & 1 == (1 if a == b else 0)

    @settings(max_examples=30, deadline=None)
    @given(a=word_values, b=word_values)
    def test_max_word(self, a, b):
        run = eval_block(
            lambda m, w, e: (lambda r: r[0] + [r[1]])(
                blocks.max_word(m, w[0], w[1])
            ),
            2,
        )
        got = run([a, b])
        assert got & ((1 << WIDTH) - 1) == max(a, b)
        assert got >> WIDTH == (1 if a < b else 0)  # b_wins, ties -> a


class TestBitwise:
    @settings(max_examples=25, deadline=None)
    @given(a=word_values, b=word_values)
    def test_bitwise_ops(self, a, b):
        run = eval_block(
            lambda m, w, e: blocks.and_word(m, w[0], w[1])
            + blocks.or_word(m, w[0], w[1])
            + blocks.xor_word(m, w[0], w[1]),
            2,
        )
        got = run([a, b])
        mask = (1 << WIDTH) - 1
        assert got & mask == a & b
        assert (got >> WIDTH) & mask == a | b
        assert (got >> (2 * WIDTH)) & mask == a ^ b

    @settings(max_examples=25, deadline=None)
    @given(a=word_values)
    def test_reductions(self, a):
        run = eval_block(
            lambda m, w, e: [
                blocks.reduce_or(m, w[0]),
                blocks.reduce_and(m, w[0]),
                blocks.reduce_xor(m, w[0]),
            ],
            1,
        )
        got = run([a])
        assert got & 1 == (1 if a else 0)
        assert (got >> 1) & 1 == (1 if a == (1 << WIDTH) - 1 else 0)
        assert (got >> 2) & 1 == bin(a).count("1") % 2


class TestShifts:
    @settings(max_examples=30, deadline=None)
    @given(a=word_values, amt=st.integers(min_value=0, max_value=7))
    def test_barrel_shift_left_logical(self, a, amt):
        run = eval_block(
            lambda m, w, e: blocks.barrel_shift_left(m, w[0], e),
            1,
            extra_bits=3,
        )
        assert run([a], extra=amt) == (a << amt) & ((1 << WIDTH) - 1)

    @settings(max_examples=30, deadline=None)
    @given(a=word_values, amt=st.integers(min_value=0, max_value=7))
    def test_barrel_shift_right_rotate(self, a, amt):
        run = eval_block(
            lambda m, w, e: blocks.barrel_shift_right(m, w[0], e, rotate=True),
            1,
            extra_bits=3,
        )
        expected = ((a >> amt) | (a << (WIDTH - amt))) & ((1 << WIDTH) - 1) \
            if amt else a
        assert run([a], extra=amt) == expected

    def test_const_shifts(self):
        word = blocks.constant_word(0b0110, 4)
        left = blocks.shift_left_const(word, 1)
        assert [b & 1 for b in left] == [0, 0, 1, 1]
        right = blocks.shift_right_const(word, 2)
        assert [b & 1 for b in right] == [1, 0, 0, 0]


class TestMultiply:
    @settings(max_examples=30, deadline=None)
    @given(a=word_values, b=word_values)
    def test_multiply(self, a, b):
        run = eval_block(lambda m, w, e: blocks.multiply(m, w[0], w[1]), 2)
        assert run([a, b]) == a * b

    @settings(max_examples=30, deadline=None)
    @given(a=word_values)
    def test_square(self, a):
        run = eval_block(lambda m, w, e: blocks.square(m, w[0]), 1)
        assert run([a]) == a * a

    def test_square_cheaper_than_multiply(self):
        m1 = Mig()
        a = [m1.add_pi() for _ in range(WIDTH)]
        for s in blocks.square(m1, a):
            m1.add_po(s)
        m2 = Mig()
        a = [m2.add_pi() for _ in range(WIDTH)]
        b = [m2.add_pi() for _ in range(WIDTH)]
        for s in blocks.multiply(m2, a, b):
            m2.add_po(s)
        assert m1.num_gates < m2.num_gates


class TestEncoders:
    @settings(max_examples=25, deadline=None)
    @given(sel=st.integers(min_value=0, max_value=15))
    def test_decoder(self, sel):
        run = eval_block(
            lambda m, w, e: blocks.decoder(m, e), 0, extra_bits=4
        )
        assert run([], extra=sel) == 1 << sel

    @settings(max_examples=30, deadline=None)
    @given(req=word_values)
    def test_priority_encoder(self, req):
        run = eval_block(
            lambda m, w, e: (lambda r: r[0] + [r[1]])(
                blocks.priority_encoder(m, w[0])
            ),
            1,
        )
        got = run([req])
        idx = got & 0b111
        valid = got >> 3
        if req == 0:
            assert valid == 0
        else:
            assert valid == 1
            assert idx == req.bit_length() - 1
