"""Tests reproducing the phenomena of the paper's Fig. 1 and Fig. 2."""

import pytest

from repro.analysis.scenarios import (
    fig1_chain,
    fig1_mig,
    fig2_ladder,
    fig2_mig,
    storage_pressure,
)
from repro.core.manager import PRESETS, compile_pipeline, full_management
from repro.plim.verify import verify_program


class TestFig1:
    def test_structure_matches_paper(self):
        mig = fig1_mig()
        assert mig.num_pis == 5
        assert mig.num_pos == 2
        assert mig.num_live_gates() == 4
        assert mig.num_complemented_edges() >= 1  # D's dotted edge

    def test_repeated_destination_under_naive(self):
        """The same device receives the results of A, then B, then C."""
        mig = fig1_mig()
        result = compile_pipeline(mig, PRESETS["naive"])
        verify_program(result.program, mig)
        assert result.stats.max_writes >= 3

    def test_chain_pathology_grows_with_length(self):
        short = compile_pipeline(fig1_chain(4), PRESETS["naive"])
        long = compile_pipeline(fig1_chain(16), PRESETS["naive"])
        assert long.stats.max_writes > short.stats.max_writes
        assert long.stats.max_writes >= 16  # ~one write per chain step

    def test_min_write_alone_cannot_fix_chain(self):
        """Section III-B: the minimum write strategy is 'not sufficient'
        when the structure forces the same destination repeatedly."""
        mig = fig1_chain(16)
        minw = compile_pipeline(mig, PRESETS["min-write"])
        verify_program(minw.program, mig)
        assert minw.stats.max_writes >= 10

    def test_write_cap_bounds_chain(self):
        """The maximum write strategy caps the hot cell, paying
        instructions and devices."""
        mig = fig1_chain(16)
        naive = compile_pipeline(mig, PRESETS["naive"])
        capped = compile_pipeline(mig, full_management(5))
        verify_program(capped.program, mig)
        assert capped.stats.max_writes <= 5
        assert capped.num_rrams >= naive.num_rrams
        assert capped.stats.stdev < naive.stats.stdev

    def test_chain_validates_input(self):
        with pytest.raises(ValueError):
            fig1_chain(0)


class TestFig2:
    def test_structure_matches_paper(self):
        mig = fig2_mig()
        assert mig.num_pis == 6
        assert mig.num_pos == 1
        assert mig.num_live_gates() == 7  # nodes A..G

    def test_blocked_node_has_long_lifetime(self):
        mig = fig2_mig()
        result = compile_pipeline(mig, PRESETS["dac16"])
        verify_program(result.program, mig)
        longest, _mean = storage_pressure(result.program)
        assert longest >= 4  # A's value waits for G

    def test_endurance_selection_improves_ladder_balance(self):
        """Algorithm 3 computes short-storage nodes first; on the ladder
        this reduces both the write stdev and the hottest cell."""
        mig = fig2_ladder(12)
        dac16 = compile_pipeline(mig, PRESETS["dac16"])
        ea = compile_pipeline(mig, PRESETS["ea-full"])
        verify_program(dac16.program, mig)
        verify_program(ea.program, mig)
        assert ea.stats.stdev < dac16.stats.stdev
        assert ea.stats.max_writes < dac16.stats.max_writes

    def test_ladder_scales(self):
        small = compile_pipeline(fig2_ladder(4), PRESETS["dac16"])
        big = compile_pipeline(fig2_ladder(16), PRESETS["dac16"])
        assert big.stats.max_writes >= small.stats.max_writes

    def test_ladder_validates_input(self):
        with pytest.raises(ValueError):
            fig2_ladder(0)

    def test_storage_pressure_empty_program(self):
        from repro.plim.isa import Program

        assert storage_pressure(Program()) == (0, 0.0)
