"""Tests for the repro.flow Session + pipeline API."""

import pickle

import pytest

from repro.analysis import report, tables
from repro.analysis.runner import ExperimentCache
from repro.core.manager import (
    PRESETS,
    compile_pipeline,
    compile_with_management,
    full_management,
)
from repro.flow import Flow, FlowResult, Session, SessionSpec, StageEvent
from repro.mig.kernel import get_kernel, set_backend
from repro.synth.arithmetic import build_adder

SUBSET = ["adder", "dec"]


class TestSessionConstruction:
    def test_defaults(self):
        session = Session()
        assert session.backend is None
        assert session.cache_dir is None
        assert session.parallel is None
        assert session.preset == "default"
        assert session.disk is None
        assert isinstance(session.cache, ExperimentCache)

    def test_explicit_cache_dir_attaches_disk(self, tmp_path):
        session = Session(cache_dir=tmp_path / "cache")
        assert session.disk is not None
        assert str(session.disk.root) == str(tmp_path / "cache")

    def test_adopted_cache_wins_over_cache_dir(self, tmp_path):
        cache = ExperimentCache()
        session = Session(cache=cache, cache_dir=tmp_path)
        assert session.cache is cache
        assert session.cache_dir is None  # adopted cache has no disk

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            Session(backend="tpu")

    def test_kernel_resolution(self):
        assert Session(backend="bigint").kernel.name == "bigint"
        assert Session().kernel is get_kernel()


class TestSessionEnvPrecedence:
    def test_from_env_reads_cache_and_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        monkeypatch.setenv("REPRO_SIM_BACKEND", "bigint")
        session = Session.from_env(preset="tiny")
        assert session.cache_dir == str(tmp_path / "envroot")
        assert session.backend == "bigint"
        assert session.preset == "tiny"

    def test_from_env_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        session = Session.from_env()
        assert session.cache_dir is None and session.backend is None

    def test_from_args_flag_beats_env(self, tmp_path, monkeypatch):
        import argparse

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        args = argparse.Namespace(cache_dir=str(tmp_path / "flag"))
        session = Session.from_args(args)
        assert session.cache_dir == str(tmp_path / "flag")

    def test_from_args_env_fallback_and_none(self, tmp_path, monkeypatch):
        import argparse

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        # flag absent entirely (namespace without the attribute)
        assert Session.from_args(argparse.Namespace()).cache_dir == str(
            tmp_path / "env"
        )
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert Session.from_args(argparse.Namespace()).cache_dir is None

    def test_from_env_reads_sim_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_THREADS", "3")
        assert Session.from_env().sim_threads == 3
        monkeypatch.delenv("REPRO_SIM_THREADS")
        assert Session.from_env().sim_threads is None

    def test_sim_threads_flag_beats_env(self, monkeypatch):
        import argparse

        from repro.mig.kernel import resolve_sim_threads

        monkeypatch.setenv("REPRO_SIM_THREADS", "3")
        args = argparse.Namespace(sim_threads=2)
        session = Session.from_args(args)
        assert session.sim_threads == 2
        with session.activated():
            assert resolve_sim_threads() == 2
        # flag absent: the env value applies ambiently at resolve time
        ambient = Session.from_args(argparse.Namespace())
        assert ambient.sim_threads is None
        with ambient.activated():
            assert resolve_sim_threads() == 3

    def test_invalid_sim_threads_rejected_eagerly(self):
        with pytest.raises(ValueError, match="thread count"):
            Session(sim_threads=0)

    def test_spec_round_trip_pickles(self, tmp_path):
        session = Session(
            backend="bigint", cache_dir=tmp_path, parallel=4, preset="tiny"
        )
        spec = pickle.loads(pickle.dumps(session.spec()))
        assert spec == SessionSpec(
            backend="bigint", cache_dir=str(tmp_path), preset="tiny"
        )
        rebuilt = Session.from_spec(spec)
        assert rebuilt.backend == "bigint"
        assert rebuilt.preset == "tiny"
        assert str(rebuilt.disk.root) == str(tmp_path)
        assert rebuilt.parallel is None  # workers never fan out again

    def test_sim_threads_ship_across_the_spec_boundary(self):
        session = Session(sim_threads=3, preset="tiny")
        spec = pickle.loads(pickle.dumps(session.spec()))
        assert spec.sim_threads == 3
        assert Session.from_spec(spec).sim_threads == 3

    def test_activated_scope_restores_override(self):
        assert set_backend(None).name  # clear any leftover override
        ambient = get_kernel()
        with Session(backend="bigint").activated() as kernel:
            assert kernel.name == "bigint"
            assert get_kernel().name == "bigint"
        assert get_kernel() is ambient

    def test_activated_scopes_are_thread_local(self):
        """Concurrent sessions must not clobber each other's backend,
        and no override may leak once every scope has exited."""
        import threading

        assert set_backend(None).name
        ambient = get_kernel()
        barrier = threading.Barrier(2)
        observed = {}

        def run(name, backend):
            with Session(backend=backend).activated():
                barrier.wait(timeout=10)  # both scopes active at once
                observed[name] = get_kernel().name
                barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=run, args=("a", "bigint")),
            threading.Thread(target=run, args=("b", "auto")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed["a"] == "bigint"
        assert observed["b"] == get_kernel().name  # auto = ambient kernel
        assert get_kernel() is ambient  # nothing leaked


class TestFlowStages:
    def test_flow_matches_raw_pipeline(self):
        session = Session(preset="tiny")
        result = Flow.for_config("ea-full", session=session).source("adder").run()
        assert isinstance(result, FlowResult)
        reference = compile_pipeline(result.mig, PRESETS["ea-full"])
        assert result.compilation.num_instructions == reference.num_instructions
        assert (
            result.program.write_counts() == reference.program.write_counts()
        )
        assert result.rewritten.num_live_gates() == result.compilation.mig_gates_after

    def test_stage_artifacts_typed_and_ordered(self):
        session = Session(preset="tiny")
        result = (
            Flow.for_config("ea-full", session=session)
            .source("dec")
            .verify(16)
            .run()
        )
        assert list(result.stages) == ["source", "rewrite", "compile", "verify"]
        assert all(a.seconds >= 0 for a in result.stages.values())
        assert result.verified_patterns == 16

    def test_verify_stage_keeps_counters_honest(self):
        """A cold verified flow is one compilation: one miss, no
        self-congratulating hit from the verify stage."""
        session = Session(preset="tiny")
        Flow.for_config("naive", session=session).source("dec").verify(16).run()
        assert (session.cache.hits, session.cache.misses) == (0, 1)

    def test_second_run_hits_every_stage(self):
        session = Session(preset="tiny")
        flow = Flow.for_config("ea-full", session=session).source("adder").verify(16)
        first = flow.run()
        assert not first.stages["compile"].cached
        misses = session.cache.misses
        second = flow.run()
        assert all(a.cached for a in second.stages.values())
        assert session.cache.misses == misses  # nothing recompiled

    def test_stage_caching_through_disk(self, tmp_path):
        cold = Session(preset="tiny", cache_dir=tmp_path)
        a = Flow.for_config("ea-full", session=cold).source("adder").run()
        # A fresh session over the same root deserialises instead of
        # compiling: every stage reports cached, no compile misses.
        warm = Session(preset="tiny", cache_dir=tmp_path)
        b = Flow.for_config("ea-full", session=warm).source("adder").run()
        assert all(artifact.cached for artifact in b.stages.values())
        assert warm.cache.misses == 0
        assert warm.disk.hits >= 3  # mig + rewrite + result deserialised
        assert a.program.write_counts() == b.program.write_counts()

    def test_rewrite_stage_persisted_to_disk(self, tmp_path):
        cold = Session(preset="tiny", cache_dir=tmp_path)
        Flow.for_config("ea-rewrite", session=cold).source("dec").run()
        warm = Session(preset="tiny", cache_dir=tmp_path)
        mig = warm.cache.benchmark_mig("dec", "tiny")
        # ask for a *different* configuration sharing the same script:
        # the compile misses, but the rewriting comes back from disk
        hits = warm.disk.hits
        warm.cache.rewritten(mig, "endurance", 5)
        assert warm.disk.hits == hits + 1

    def test_explicit_rewrite_overrides_config_script(self):
        session = Session(preset="tiny")
        vanilla = Flow.for_config("naive", session=session).source("adder").run()
        rewired = (
            Flow.for_config("naive", session=session)
            .source("adder")
            .rewrite("endurance", effort=2)
            .run()
        )
        assert rewired.compilation.config.rewriting == "endurance"
        assert rewired.compilation.config.effort == 2
        assert vanilla.compilation.config.rewriting == "none"

    def test_source_required(self):
        with pytest.raises(ValueError, match="no source"):
            Flow.for_config("naive", session=Session()).run()

    def test_unknown_preset_name_rejected(self):
        with pytest.raises(ValueError, match="unknown configuration preset"):
            Flow(Session()).compile("turbo")

    def test_session_flow_shorthand(self):
        session = Session(preset="tiny")
        result = session.flow(full_management(10)).source("dec").run()
        assert result.compilation.config.name == "ea-full+wmax10"


class TestObserverHooks:
    def test_flow_hook_ordering(self):
        session = Session(preset="tiny")
        events = []
        (
            Flow.for_config("naive", session=session)
            .source("dec")
            .verify(8)
            .on_stage_start(lambda e: events.append(("start", e.stage)))
            .on_stage_end(lambda e: events.append(("end", e.stage)))
            .run()
        )
        assert events == [
            ("start", "source"), ("end", "source"),
            ("start", "rewrite"), ("end", "rewrite"),
            ("start", "compile"), ("end", "compile"),
            ("start", "verify"), ("end", "verify"),
        ]

    def test_session_observer_sees_flow_and_matrix_events(self):
        session = Session(preset="tiny")
        seen = []

        class Observer:
            def on_stage_start(self, event):
                seen.append(("start", event.stage, event.seconds))

            def on_stage_end(self, event):
                seen.append(("end", event.stage, event.seconds))

        observer = session.add_observer(Observer())
        Flow.for_config("naive", session=session).source("dec").run()
        assert ("start", "source", None) == seen[0]
        end_events = [e for e in seen if e[0] == "end"]
        assert all(e[2] is not None for e in end_events)
        seen.clear()
        session.run_matrix(["dec"], ["naive"])
        assert [e[:2] for e in seen] == [
            ("start", "matrix"), ("end", "matrix")
        ]
        seen.clear()
        session.remove_observer(observer)
        Flow.for_config("naive", session=session).source("dec").run()
        assert not seen

    def test_end_event_carries_cached_flag(self):
        session = Session(preset="tiny")
        flags = []
        flow = (
            Flow.for_config("naive", session=session)
            .source("dec")
            .on_stage_end(lambda e: flags.append((e.stage, e.cached)))
        )
        flow.run()
        assert ("compile", False) in flags
        flags.clear()
        flow.run()
        assert set(flags) == {
            ("source", True), ("rewrite", True), ("compile", True)
        }

    def test_stage_event_finished_is_pure(self):
        start = StageEvent(stage="compile", flow="x/naive")
        end = start.finished(seconds=1.5, cached=True)
        assert start.seconds is None and end.seconds == 1.5
        assert end.stage == "compile" and end.cached is True


class TestLegacyShims:
    def test_compile_with_management_warns_and_matches(self):
        mig = build_adder(width=4)
        with pytest.warns(DeprecationWarning, match="compile_with_management"):
            legacy = compile_with_management(mig, PRESETS["ea-full"])
        flow = Flow.for_config("ea-full", session=Session()).source_mig(mig).run()
        assert legacy.num_instructions == flow.compilation.num_instructions
        assert (
            legacy.program.write_counts() == flow.program.write_counts()
        )

    def test_evaluate_suite_warns(self):
        with pytest.warns(DeprecationWarning, match="evaluate_suite"):
            tables.evaluate_suite(
                preset="tiny", names=["dec"], verify=False
            )

    def test_legacy_artifacts_byte_identical(self):
        """The acceptance parity check: tables and reports rendered via
        the deprecated entry points match the Session/Flow path byte for
        byte."""
        session = Session(preset="tiny")
        modern = session.evaluate_suite(SUBSET, caps=[10, 100], verify=False)
        with pytest.warns(DeprecationWarning):
            legacy = tables.evaluate_suite(
                preset="tiny", names=SUBSET, caps=[10, 100], verify=False
            )
        for render in (
            report.render_table1,
            report.render_table2,
            report.render_table3,
            report.render_headline,
        ):
            assert render(modern) == render(legacy)

    def test_full_report_legacy_args_match_session_path(self):
        session = Session(preset="tiny")
        modern = session.full_report(["dec"], caps=[10, 100], verify=False)
        legacy = report.full_report(
            preset="tiny", names=["dec"], caps=[10, 100], verify=False
        )
        assert modern == legacy

    def test_evaluate_suite_adopts_shared_cache(self):
        cache = ExperimentCache()
        with pytest.warns(DeprecationWarning):
            tables.evaluate_suite(
                preset="tiny", names=["dec"], verify=False, cache=cache
            )
        assert cache.misses > 0
        misses = cache.misses
        with pytest.warns(DeprecationWarning):
            tables.evaluate_suite(
                preset="tiny", names=["dec"], verify=False, cache=cache
            )
        assert cache.misses == misses


class TestMatrixThroughSession:
    @pytest.mark.slow
    def test_parallel_spec_round_trip(self):
        """Workers rebuilt from the session spec produce bit-identical
        results to the serial path."""
        serial = Session(preset="tiny")
        fanned = Session(preset="tiny", parallel=2, backend="bigint")
        a = serial.run_matrix(SUBSET, ["naive", "ea-full"])
        b = fanned.run_matrix(SUBSET, ["naive", "ea-full"])
        for x, y in zip(a, b):
            assert x.name == y.name
            for key in x.results:
                assert (
                    x.results[key].program.write_counts()
                    == y.results[key].program.write_counts()
                )

    def test_evaluate_suite_defaults_to_table1_columns(self):
        session = Session(preset="tiny")
        (ev,) = session.evaluate_suite(["dec"], verify=False)
        assert list(ev.results) == [
            "naive", "dac16", "min-write", "ea-rewrite", "ea-full",
        ]
