"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.mig.graph import Mig
from repro.mig.signal import complement


def make_random_mig(
    num_pis: int,
    num_gates: int,
    seed: int,
    *,
    complement_prob: float = 0.3,
    num_pos: int = None,
    use_strash: bool = True,
) -> Mig:
    """Deterministic random MIG used across tests.

    Gates draw three distinct-ish operands from the growing pool with
    random complement attributes; outputs sample the deepest quarter so
    compiled programs are non-trivial.
    """
    rng = random.Random(seed)
    mig = Mig(f"rand{seed}", use_strash=use_strash)
    pool = [mig.add_pi(f"x{i}") for i in range(num_pis)]
    pool.append(0)  # allow constant operands occasionally

    created = 0
    attempts = 0
    while created < num_gates and attempts < num_gates * 30:
        attempts += 1
        ops = []
        for _ in range(3):
            sig = pool[rng.randrange(len(pool))]
            if rng.random() < complement_prob:
                sig = complement(sig)
            ops.append(sig)
        sig = mig.add_maj(*ops)
        if sig <= 1 or sig in pool:
            continue
        pool.append(sig)
        created += 1

    n_pos = num_pos if num_pos is not None else max(1, created // 8)
    start = max(num_pis + 1, len(pool) - max(4 * n_pos, len(pool) // 4))
    candidates = pool[start:] or pool[num_pis:] or pool[:num_pis]
    for i in range(n_pos):
        sig = candidates[rng.randrange(len(candidates))]
        if rng.random() < complement_prob:
            sig = complement(sig)
        mig.add_po(sig, f"y{i}")
    return mig


@pytest.fixture
def tiny_adder():
    from repro.synth.arithmetic import build_adder

    return build_adder(width=4)


@pytest.fixture
def small_random_mig():
    return make_random_mig(num_pis=6, num_gates=40, seed=7)


@pytest.fixture
def xor_mig():
    mig = Mig("xor2")
    a, b = mig.add_pi("a"), mig.add_pi("b")
    mig.add_po(mig.add_xor(a, b), "f")
    return mig
