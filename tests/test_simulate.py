"""Tests for bit-parallel MIG simulation and equivalence checking."""

import pytest

from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.mig.simulate import (
    equivalent,
    find_counterexample,
    simulate,
    simulate_one,
    truth_tables,
)
from .conftest import make_random_mig


class TestSimulate:
    def test_constant_outputs(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(0, "zero")
        mig.add_po(1, "one")
        assert simulate(mig, [0]) == [0, 1]
        assert simulate(mig, [1]) == [0, 1]

    def test_majority_single_pattern(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_po(mig.add_maj(a, b, c))
        assert simulate(mig, [1, 1, 0]) == [1]
        assert simulate(mig, [1, 0, 0]) == [0]

    def test_bit_parallel_matches_serial(self):
        mig = make_random_mig(5, 30, seed=3)
        mask = (1 << 8) - 1
        words = [0b10110010, 0b01011100, 0b11110000, 0b00001111, 0b10101010]
        parallel = simulate(mig, words, mask=mask)
        for bit in range(8):
            serial = simulate(mig, [(w >> bit) & 1 for w in words])
            for po in range(mig.num_pos):
                assert (parallel[po] >> bit) & 1 == serial[po]

    def test_wrong_arity_raises(self):
        mig = Mig()
        mig.add_pi()
        mig.add_po(0)
        with pytest.raises(ValueError):
            simulate(mig, [0, 1])

    def test_complemented_po(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(complement(a), "na")
        assert simulate(mig, [1]) == [0]
        assert simulate(mig, [0]) == [1]

    def test_simulate_one_by_name(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_and(a, b), "f")
        assert simulate_one(mig, {"a": 1, "b": 1}) == {"f": 1}
        assert simulate_one(mig, {"a": 1, "b": 0}) == {"f": 0}
        with pytest.raises(KeyError):
            simulate_one(mig, {"a": 1})


class TestTruthTables:
    def test_xor(self, xor_mig):
        assert truth_tables(xor_mig) == [0b0110]

    def test_too_many_inputs(self):
        mig = Mig()
        for _ in range(21):
            mig.add_pi()
        mig.add_po(0)
        with pytest.raises(ValueError):
            truth_tables(mig)

    def test_variable_pattern_convention(self):
        # PI i toggles with period 2^(i+1): bit m of its word is bit i of m.
        mig = Mig()
        a, b = mig.add_pi(), mig.add_pi()
        mig.add_po(a)
        mig.add_po(b)
        ta, tb = truth_tables(mig)
        assert ta == 0b1010
        assert tb == 0b1100


class TestEquivalence:
    def test_identical_equivalent(self, small_random_mig):
        assert equivalent(small_random_mig, small_random_mig.clone())

    def test_detects_difference(self):
        m1 = Mig()
        a, b = m1.add_pi(), m1.add_pi()
        m1.add_po(m1.add_and(a, b))
        m2 = Mig()
        a, b = m2.add_pi(), m2.add_pi()
        m2.add_po(m2.add_or(a, b))
        assert not equivalent(m1, m2)

    def test_interface_mismatch(self):
        m1 = Mig()
        m1.add_pi()
        m1.add_po(0)
        m2 = Mig()
        m2.add_pi()
        m2.add_pi()
        m2.add_po(0)
        assert not equivalent(m1, m2)

    def test_random_path_for_many_inputs(self):
        m1 = make_random_mig(20, 60, seed=11)
        m2 = m1.clone()
        assert equivalent(m1, m2, exhaustive_limit=4)

    def test_counterexample_found(self):
        m1 = Mig()
        a, b = m1.add_pi("a"), m1.add_pi("b")
        m1.add_po(m1.add_and(a, b), "f")
        m2 = Mig()
        a, b = m2.add_pi("a"), m2.add_pi("b")
        m2.add_po(m2.add_or(a, b), "f")
        cex = find_counterexample(m1, m2)
        assert cex is not None
        va, vb = cex["a"], cex["b"]
        assert (va & vb) != (va | vb)

    def test_counterexample_none_for_equal(self, small_random_mig):
        assert find_counterexample(
            small_random_mig, small_random_mig.clone()
        ) is None


class TestChunkedExhaustive:
    def test_input_word_matches_definition(self):
        from repro.mig.simulate import input_word

        for var in range(5):
            for base in (0, 3, 8, 21):
                word = input_word(var, 16, base)
                for j in range(16):
                    assert (word >> j) & 1 == ((base + j) >> var) & 1, (
                        var, base, j,
                    )

    def test_exhaustive_words_cover_all_minterms(self):
        from repro.mig.simulate import exhaustive_words

        words = exhaustive_words(3, 8)
        patterns = {
            tuple((w >> m) & 1 for w in words) for m in range(8)
        }
        assert len(patterns) == 8  # all 2^3 assignments, each once

    def test_chunked_equals_monolithic(self):
        from repro.mig.simulate import truth_tables

        mig = make_random_mig(8, 60, seed=5)
        assert truth_tables(mig, chunk_bits=4) == truth_tables(
            mig, chunk_bits=13
        )

    def test_wide_exhaustive_beyond_default_chunk(self):
        # 15 inputs = 2^15 patterns: forces the chunked path (2^13 words)
        mig = make_random_mig(15, 40, seed=9)
        assert equivalent(mig, mig.clone())


class TestInputWordProperties:
    """input_word(var, n, base) bit j must equal bit var of (base + j)."""

    @staticmethod
    def _check(var, num_patterns, base):
        from repro.mig.simulate import input_word

        word = input_word(var, num_patterns, base)
        assert word >> num_patterns == 0, "word exceeds the window"
        for j in range(num_patterns):
            assert (word >> j) & 1 == ((base + j) >> var) & 1, (
                var, num_patterns, base, j,
            )

    def test_nonzero_base_offsets(self):
        for var in range(7):
            for base in (1, 2, 5, 31, 63, 64, 127, 1000):
                self._check(var, 40, base)

    def test_chunk_boundary_bases(self):
        # Bases as produced by exhaustive_chunks: multiples of the
        # chunk width, crossing every alignment case of the period.
        for chunk_bits in (3, 4, 6):
            width = 1 << chunk_bits
            for var in range(8):
                for chunk in (0, 1, 2, 3, 7, 9):
                    self._check(var, width, chunk * width)

    def test_window_inside_constant_half_period(self):
        from repro.mig.simulate import input_word

        # Entirely inside the zero half-period / the ones half-period.
        assert input_word(5, 16, 0) == 0
        assert input_word(5, 16, 32) == (1 << 16) - 1
        assert input_word(5, 16, 8) == 0

    try:
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=60, deadline=None)
        @given(
            var=st.integers(min_value=0, max_value=12),
            num_patterns=st.integers(min_value=1, max_value=300),
            base=st.integers(min_value=0, max_value=1 << 16),
        )
        def test_property_random_windows(self, var, num_patterns, base):
            TestInputWordProperties._check(var, num_patterns, base)
    except ImportError:  # pragma: no cover - hypothesis is optional
        pass


class TestEquivalentLimits:
    def test_default_limit_is_unified_constant(self):
        from repro.mig.simulate import MAX_EXHAUSTIVE_PIS

        assert MAX_EXHAUSTIVE_PIS == 20

    def test_refuses_silent_random_fallback(self):
        from repro.mig.simulate import MAX_EXHAUSTIVE_PIS

        m1 = make_random_mig(MAX_EXHAUSTIVE_PIS + 1, 30, seed=13)
        with pytest.raises(ValueError, match="exhaustive_limit"):
            equivalent(m1, m1.clone())

    def test_explicit_limit_opts_into_random(self):
        m1 = make_random_mig(22, 30, seed=13)
        assert equivalent(m1, m1.clone(), exhaustive_limit=4)

    def test_limit_above_ceiling_rejected(self):
        from repro.mig.simulate import MAX_EXHAUSTIVE_PIS

        m1 = make_random_mig(4, 10, seed=1)
        with pytest.raises(ValueError, match="MAX_EXHAUSTIVE_PIS"):
            equivalent(
                m1, m1.clone(), exhaustive_limit=MAX_EXHAUSTIVE_PIS + 1
            )

    def test_exhaustive_early_exit_on_difference(self):
        m1 = Mig()
        pis = [m1.add_pi() for _ in range(15)]
        m1.add_po(m1.add_and(pis[0], pis[1]))
        m2 = Mig()
        pis = [m2.add_pi() for _ in range(15)]
        m2.add_po(m2.add_or(pis[0], pis[1]))
        assert not equivalent(m1, m2)
