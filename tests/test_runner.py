"""Tests for the cached experiment runner (repro.analysis.runner)."""

import pytest

from repro.analysis.runner import (
    BenchmarkEvaluation,
    ExperimentCache,
    config_key,
    mig_key,
    resolve_configs,
    result_label,
    run_matrix,
)
from repro.core.manager import PRESETS, full_management
from repro.synth.arithmetic import build_adder

SUBSET = ["adder", "dec", "ctrl"]


def _result_signature(evaluation):
    """Comparable digest of one evaluation (programs incl. write counts)."""
    return {
        key: (
            res.num_instructions,
            res.num_rrams,
            tuple(res.program.write_counts()),
        )
        for key, res in evaluation.results.items()
    }


class TestConfigKey:
    def test_name_is_not_part_of_identity(self):
        from dataclasses import replace

        base = PRESETS["ea-full"]
        renamed = replace(base, name="relabelled")
        assert renamed.name != base.name
        assert config_key(renamed) == config_key(base)
        # with_cap(None) relabels nothing and keeps the identity too
        assert config_key(base.with_cap(None)) == config_key(base)

    def test_with_cap_changes_identity(self):
        base = PRESETS["ea-full"]
        assert config_key(base.with_cap(100)) != config_key(base)
        assert config_key(base.with_cap(100)) != config_key(base.with_cap(10))

    def test_full_management_matches_with_cap(self):
        assert config_key(full_management(20)) == config_key(
            PRESETS["ea-full"].with_cap(20)
        )

    def test_result_label_strips_cap_prefix(self):
        assert result_label(full_management(50)) == "wmax50"
        assert result_label(PRESETS["naive"]) == "naive"


class TestExperimentCache:
    def test_hit_on_semantically_equal_config(self):
        cache = ExperimentCache()
        mig = build_adder(width=4)
        first = cache.compile(mig, full_management(20))
        assert (cache.hits, cache.misses) == (0, 1)
        # with_cap relabels but does not change semantics
        second = cache.compile(mig, PRESETS["ea-full"].with_cap(20))
        assert (cache.hits, cache.misses) == (1, 1)
        assert first is second

    def test_miss_on_different_cap(self):
        cache = ExperimentCache()
        mig = build_adder(width=4)
        cache.compile(mig, full_management(20))
        cache.compile(mig, full_management(10))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_rewrite_shared_between_configs(self):
        cache = ExperimentCache()
        mig = build_adder(width=4)
        cache.compile(mig, PRESETS["ea-rewrite"])
        cache.compile(mig, PRESETS["ea-full"])  # same rewriting script
        assert len(cache._rewrites) == 1

    def test_benchmark_mig_memoized(self):
        cache = ExperimentCache()
        assert cache.benchmark_mig("adder", "tiny") is cache.benchmark_mig(
            "adder", "tiny"
        )
        assert cache.benchmark_mig("adder", "tiny") is not cache.benchmark_mig(
            "dec", "tiny"
        )

    def test_verification_runs_once_per_entry(self):
        cache = ExperimentCache()
        mig = build_adder(width=3)
        cache.compile(mig, PRESETS["naive"], verify=True, verify_patterns=16)
        # re-request with verification: served from the stored certificate
        cache.compile(mig, PRESETS["naive"], verify=True, verify_patterns=16)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_migs_do_not_collide(self):
        cache = ExperimentCache()
        small = cache.compile(build_adder(width=3), PRESETS["naive"])
        large = cache.compile(build_adder(width=5), PRESETS["naive"])
        assert small.num_instructions != large.num_instructions
        assert cache.misses == 2

    def test_mig_key_distinguishes_widths(self):
        assert mig_key(build_adder(width=3)) != mig_key(build_adder(width=5))


class TestRunMatrix:
    def test_caps_extend_table1_columns(self):
        evaluations = run_matrix(
            ["adder"], preset="tiny", caps=[10], verify=False
        )
        (ev,) = evaluations
        assert isinstance(ev, BenchmarkEvaluation)
        for key in ("naive", "dac16", "min-write", "ea-rewrite", "ea-full",
                    "wmax10"):
            assert key in ev.results

    def test_shared_cache_makes_second_pass_free(self):
        cache = ExperimentCache()
        run_matrix(SUBSET, preset="tiny", verify=False, cache=cache)
        misses = cache.misses
        run_matrix(SUBSET, preset="tiny", verify=False, cache=cache)
        assert cache.misses == misses  # pure cache hits

    def test_effort_override_changes_identity(self):
        cache = ExperimentCache()
        run_matrix(
            ["adder"], ["dac16"], preset="tiny", effort=1, cache=cache
        )
        run_matrix(
            ["adder"], ["dac16"], preset="tiny", effort=2, cache=cache
        )
        assert cache.misses == 2

    @pytest.mark.slow
    def test_parallel_matches_serial(self):
        serial = run_matrix(SUBSET, preset="tiny", caps=[10], verify=False)
        fanned = run_matrix(
            SUBSET, preset="tiny", caps=[10], verify=False, parallel=2
        )
        assert [e.name for e in fanned] == [e.name for e in serial]
        for a, b in zip(serial, fanned):
            assert _result_signature(a) == _result_signature(b)

    @pytest.mark.slow
    def test_parallel_cooperates_with_shared_cache(self):
        from repro.analysis.runner import ExperimentCache

        cache = ExperimentCache()
        plain = run_matrix(
            SUBSET, preset="tiny", verify=False, cache=cache
        )
        compiled = cache.misses
        # capped pass in parallel: Table I columns come from the cache,
        # only the wmax10 column is dispatched to workers
        capped = run_matrix(
            SUBSET,
            preset="tiny",
            caps=[10],
            verify=False,
            parallel=2,
            cache=cache,
        )
        assert cache.misses == compiled  # nothing recompiled in-process
        for a, b in zip(plain, capped):
            assert _result_signature(a).items() <= _result_signature(b).items()
            assert "wmax10" in b.results
        # serial reference run must agree exactly
        reference = run_matrix(SUBSET, preset="tiny", caps=[10], verify=False)
        for a, b in zip(reference, capped):
            assert _result_signature(a) == _result_signature(b)

    def test_resolve_configs_defaults_to_table1(self):
        jobs = resolve_configs()
        assert [c.name for c in jobs] == [
            "naive", "dac16", "min-write", "ea-rewrite", "ea-full",
        ]


class TestMigKeyStructure:
    def test_same_shape_different_function_distinct(self):
        from repro.mig.graph import Mig

        def build(op):
            mig = Mig()  # anonymous: name and all counts coincide
            a, b = mig.add_pi("a"), mig.add_pi("b")
            mig.add_po(getattr(mig, op)(a, b), "f")
            return mig

        and_mig, or_mig = build("add_and"), build("add_or")
        assert and_mig.num_nodes == or_mig.num_nodes
        assert mig_key(and_mig) != mig_key(or_mig)
        cache = ExperimentCache()
        p1 = cache.compile(and_mig, PRESETS["naive"], verify=True)
        p2 = cache.compile(or_mig, PRESETS["naive"], verify=True)
        assert cache.misses == 2  # no cross-function cache hit
        assert p1 is not p2

    def test_digest_memoized_and_invalidated(self):
        mig = build_adder(width=3)
        d = mig.structural_digest()
        assert mig.structural_digest() == d
        mig.add_po(mig.pi_signals()[0], "extra")
        assert mig.structural_digest() != d


class TestCooperativeVerification:
    @pytest.mark.slow
    def test_verifying_run_dispatches_unverified_entries(self):
        cache = ExperimentCache()
        run_matrix(
            ["adder", "dec"], ["naive"], preset="tiny",
            verify=False, cache=cache,
        )
        mig = cache.cached_mig("adder", "tiny")
        cfg = PRESETS["naive"]
        assert cache.has(mig, cfg)
        assert not cache.has(mig, cfg, verified_patterns=16)
        # verifying parallel pass: entries count as missing, workers
        # verify, and the adopted certificate upgrades the stored entry
        run_matrix(
            ["adder", "dec"], ["naive"], preset="tiny",
            verify=True, verify_patterns=16, parallel=2, cache=cache,
        )
        assert cache.has(mig, cfg, verified_patterns=16)


class TestResolveConfigEffort:
    def test_effort_override_applies_to_names_only(self):
        from repro.core.manager import EnduranceConfig

        custom = EnduranceConfig(name="custom", rewriting="dac16", effort=2)
        jobs = resolve_configs(["naive", custom], caps=[10], effort=3)
        by_name = {c.name: c for c in jobs}
        assert by_name["naive"].effort == 3          # preset: overridden
        assert by_name["custom"].effort == 2         # explicit: preserved
        assert by_name["ea-full+wmax10"].effort == 3  # cap: overridden


class TestDuplicateLabels:
    def test_distinct_configs_sharing_a_label_refused(self):
        from dataclasses import replace

        from repro.analysis.runner import evaluate_mig_cached

        impostor = replace(PRESETS["dac16"], name="naive")
        with pytest.raises(ValueError, match="share the result label"):
            evaluate_mig_cached(
                build_adder(width=3), [PRESETS["naive"], impostor]
            )

    def test_repeated_identical_config_allowed(self):
        from repro.analysis.runner import evaluate_mig_cached

        ev = evaluate_mig_cached(
            build_adder(width=3), [PRESETS["naive"], PRESETS["naive"]]
        )
        assert set(ev.results) == {"naive"}


class TestWorkerCounterAggregation:
    """run_matrix(parallel=N) folds each worker's cache counters into
    the shared cache, so BENCH_suite.json reports the fan-out's cache
    behaviour instead of only the parent process's view."""

    @pytest.mark.slow
    def test_parallel_aggregates_worker_counters(self, tmp_path):
        from repro.flow import Session

        session = Session(cache_dir=tmp_path, preset="tiny")
        session.run_matrix(
            ["adder", "ctrl", "int2float"], ["naive", "dac16"], parallel=2
        )
        counters = session.cache.worker_counters
        assert counters["workers"] == 3  # one per dispatched benchmark
        # each worker compiled its two configurations locally...
        assert counters["misses"] == 6
        assert counters["hits"] == 0
        # ...and persisted them through the shared disk root
        assert counters["disk_misses"] > 0

    @pytest.mark.slow
    def test_warm_rerun_reports_worker_disk_hits(self, tmp_path):
        from repro.flow import Session

        cold = Session(cache_dir=tmp_path, preset="tiny")
        cold.run_matrix(["adder", "ctrl"], ["naive"], parallel=2)
        # The verification upgrade makes the persisted (uncertified)
        # entries count as missing, so workers are dispatched — and find
        # their builds and compilations already on the shared root.
        warm = Session(cache_dir=tmp_path, preset="tiny")
        warm.run_matrix(
            ["adder", "ctrl"], ["naive"], parallel=2,
            verify=True, verify_patterns=16,
        )
        counters = warm.cache.worker_counters
        assert counters["workers"] == 2
        assert counters["disk_hits"] > 0  # served from the shared root

    def test_serial_runs_leave_worker_counters_zero(self):
        from repro.analysis.runner import ExperimentCache

        cache = ExperimentCache()
        run_matrix(["adder"], ["naive"], preset="tiny", cache=cache)
        assert cache.worker_counters["workers"] == 0
        assert all(v == 0 for v in cache.worker_counters.values())
