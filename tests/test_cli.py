"""Smoke tests for the command-line interface."""

import pytest

from repro.analysis.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "headline", "fig1",
                    "fig2", "list"):
            args = parser.parse_args([cmd] if cmd in ("fig1", "fig2", "list")
                                     else [cmd, "--preset", "tiny"])
            assert callable(args.func)

    def test_bench_validates_name(self, capsys):
        # names validate at resolve time now (paths are legal too), so
        # a typo is a clean diagnostic + exit 2, not an argparse abort
        assert main(["bench", "nonesuch"]) == 2
        assert "unknown source 'nonesuch'" in capsys.readouterr().err

    def test_bench_accepts_netlist_path(self):
        args = build_parser().parse_args(["bench", "circuits/alu.blif"])
        assert args.name == "circuits/alu.blif"

    def test_bench_name_optional(self):
        assert build_parser().parse_args(["bench"]).name is None

    def test_source_list_subcommand(self, capsys):
        assert main(["source", "list"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "registry" in out

    def test_sourcesweep_defaults(self):
        args = build_parser().parse_args(["sourcesweep", "adder"])
        assert args.sources == ["adder"]
        assert args.configs == ["naive", "ea-full"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "voter" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "writes per device" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "value lifetime" in out

    def test_bench(self, capsys):
        assert main(["bench", "dec", "--preset", "tiny", "--wmax", "10"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out and "ea-full" in out and "wmax10" in out

    def test_table1_subset(self, capsys):
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "dec", "ctrl",
        ]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "dec" in out

    def test_table2_subset(self, capsys):
        assert main([
            "table2", "--preset", "tiny", "--benchmarks", "dec",
            "--no-verify",
        ]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_table3_subset(self, capsys):
        assert main([
            "table3", "--preset", "tiny", "--benchmarks", "ctrl",
        ]) == 0
        assert "TABLE III" in capsys.readouterr().out

    def test_headline_subset(self, capsys):
        assert main([
            "headline", "--preset", "tiny", "--benchmarks", "dec", "ctrl",
        ]) == 0
        assert "HEADLINE" in capsys.readouterr().out


class TestBackendOption:
    def test_suite_subcommands_accept_backend(self, capsys):
        for cmd in ("table1", "table2", "table3", "headline", "report"):
            args = build_parser().parse_args(
                [cmd, "--preset", "tiny", "--backend", "bigint"]
            )
            assert args.backend == "bigint"
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "dec",
            "--no-verify", "--backend", "bigint",
        ]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_bench_accepts_backend(self, capsys):
        assert main([
            "bench", "dec", "--preset", "tiny", "--backend", "bigint",
        ]) == 0
        assert "naive" in capsys.readouterr().out

    def test_fig_commands_accept_backend(self, capsys):
        assert main(["fig1", "--backend", "bigint"]) == 0
        capsys.readouterr()
        assert main(["fig2", "--backend", "bigint"]) == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["table1", "--backend", "quantum"]
            )

    def test_backend_does_not_change_artifacts(self, capsys):
        """bigint is the reference engine; pinning it must not change
        any table (verification runs through the selected kernel)."""
        argv = ["table1", "--preset", "tiny", "--benchmarks", "dec"]
        assert main(argv) == 0
        ambient = capsys.readouterr().out
        assert main(argv + ["--backend", "bigint"]) == 0
        assert capsys.readouterr().out == ambient


class TestArchOption:
    def test_arch_list(self, capsys):
        assert main(["arch", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("dac16", "endurance", "blocked"):
            assert name in out
        assert "word lines of 8" in out

    def test_list_shows_architectures(self, capsys):
        assert main(["list"]) == 0
        assert "architectures" in capsys.readouterr().out

    def test_unknown_arch_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--arch", "quantum"])

    def test_bench_accepts_arch(self, capsys):
        assert main([
            "bench", "dec", "--preset", "tiny", "--arch", "blocked",
        ]) == 0
        assert "naive" in capsys.readouterr().out

    def test_default_arch_does_not_change_artifacts(self, capsys):
        """Pinning the default machine must not change any table —
        the architecture layer's core parity promise, at CLI level."""
        argv = ["table1", "--preset", "tiny", "--benchmarks", "dec"]
        assert main(argv) == 0
        ambient = capsys.readouterr().out
        assert main(argv + ["--arch", "endurance"]) == 0
        assert capsys.readouterr().out == ambient

    def test_archsweep(self, capsys):
        assert main([
            "archsweep", "dec", "--preset", "tiny", "--no-verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "ARCHITECTURE SWEEP" in out
        for name in ("dac16", "endurance", "blocked"):
            assert name in out
        assert "unsupported pairs:" in out  # dac16/ea-full gap

    def test_archsweep_subset(self, capsys):
        assert main([
            "archsweep", "dec", "--preset", "tiny", "--no-verify",
            "--archs", "blocked", "--configs", "naive",
        ]) == 0
        out = capsys.readouterr().out
        assert "blocked" in out and "dac16" not in out

    def test_env_selects_arch(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ARCH", "blocked")
        assert main(["bench", "dec", "--preset", "tiny"]) == 0
        blocked_out = capsys.readouterr().out
        monkeypatch.delenv("REPRO_ARCH")
        assert main(["bench", "dec", "--preset", "tiny"]) == 0
        # the word-addressed machine provisions whole lines: different #R
        assert blocked_out != capsys.readouterr().out


class TestCachePrecedence:
    def test_flag_beats_env(self, tmp_path, monkeypatch, capsys):
        env_root = tmp_path / "env"
        flag_root = tmp_path / "flag"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_root))
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "dec",
            "--no-verify", "--cache-dir", str(flag_root),
        ]) == 0
        capsys.readouterr()
        assert flag_root.is_dir()
        assert not env_root.exists()

    def test_flag_beats_env_for_maintenance(self, tmp_path, monkeypatch, capsys):
        env_root = tmp_path / "env"
        flag_root = tmp_path / "flag"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(env_root))
        assert main(["cache", "stats", "--cache-dir", str(flag_root)]) == 0
        assert str(flag_root) in capsys.readouterr().out

    def test_every_suite_subcommand_has_cache_dir(self):
        parser = build_parser()
        for cmd in ("table1", "table2", "table3", "headline", "report",
                    "bench"):
            argv = [cmd, "--cache-dir", "somewhere"]
            if cmd == "bench":
                argv.insert(1, "dec")
            args = parser.parse_args(argv)
            assert args.cache_dir == "somewhere"


class TestCacheCommands:
    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_stats_on_empty_root(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries      : 0" in out

    def test_suite_populates_then_stats_then_clear(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "dec",
            "--no-verify", "--cache-dir", root,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "entries      : 0" not in out and "(current)" in out
        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        assert "entries      : 0" in capsys.readouterr().out

    def test_env_var_enables_cache(self, tmp_path, monkeypatch, capsys):
        root = tmp_path / "envcache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "ctrl",
            "--no-verify",
        ]) == 0
        capsys.readouterr()
        assert root.is_dir()
        assert main(["cache", "stats"]) == 0
        assert str(root) in capsys.readouterr().out

    def test_stats_json(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "cache")
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "dec",
            "--no-verify", "--cache-dir", root,
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--cache-dir", root]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["root"] == root
        assert stats["entries"] > 0
        assert stats["shards"] and "fingerprint" in stats["shards"][0]


class TestOptimizerOption:
    def test_opt_list(self, capsys):
        assert main(["opt", "list"]) == 0
        out = capsys.readouterr().out
        for token in ("script", "greedy", "budget", "write_cost",
                      "node_count", "cycle:endurance"):
            assert token in out

    def test_list_shows_optimizers(self, capsys):
        main(["list"])
        assert "optimizers" in capsys.readouterr().out

    def test_optsweep(self, capsys):
        assert main([
            "optsweep", "ctrl", "--preset", "tiny", "--no-verify",
            "--opts", "script", "greedy",
        ]) == 0
        out = capsys.readouterr().out
        assert "OPTIMIZER SWEEP" in out
        assert "greedy:write_cost" in out

    def test_bench_accepts_opt(self, capsys):
        assert main([
            "bench", "ctrl", "--preset", "tiny", "--opt", "greedy",
        ]) == 0
        assert "naive" in capsys.readouterr().out

    def test_table1_accepts_opt(self, capsys):
        assert main([
            "table1", "--preset", "tiny", "--benchmarks", "ctrl",
            "--no-verify", "--opt", "greedy:node_count",
        ]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_invalid_opt_spec_rejected(self, capsys):
        assert main(
            ["bench", "ctrl", "--preset", "tiny", "--opt", "warp"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestManifestCommands:
    def _seed_cache(self, tmp_path):
        from repro.analysis.diskcache import DiskCache

        disk = DiskCache(tmp_path)
        key = ("result", "adder", "tiny", "cfg")
        disk.store(
            key,
            {"answer": 42},
            manifest={
                "benchmark": "adder",
                "config": "naive",
                "arch": "endurance",
                "opt": "script",
                "verified_patterns": 64,
                "events": [{"kind": "retry", "job": "adder", "attempt": 1}],
            },
        )
        return disk.entry_path(key)

    def test_manifest_show(self, tmp_path, capsys):
        self._seed_cache(tmp_path)
        assert main(["manifest", "show", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "naive" in out
        assert "events=[retry]" in out
        assert "1 manifest(s)" in out

    def test_manifest_show_verbose(self, tmp_path, capsys):
        self._seed_cache(tmp_path)
        assert main([
            "manifest", "show", "--cache-dir", str(tmp_path), "-v",
        ]) == 0
        out = capsys.readouterr().out
        assert "sha256" in out
        assert "event : retry" in out

    def test_manifest_verify_clean(self, tmp_path, capsys):
        self._seed_cache(tmp_path)
        assert main(["manifest", "verify", "--cache-dir", str(tmp_path)]) == 0
        assert "0 failed" in capsys.readouterr().out

    def test_manifest_verify_flags_tampering(self, tmp_path, capsys):
        entry = self._seed_cache(tmp_path)
        entry.write_bytes(entry.read_bytes() + b"tampered")
        assert main(["manifest", "verify", "--cache-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "digest mismatch" in out
        assert "1 failed" in out

    def test_manifest_empty_cache(self, tmp_path, capsys):
        assert main(["manifest", "show", "--cache-dir", str(tmp_path)]) == 0
        assert "0 manifest(s)" in capsys.readouterr().out

    def test_manifest_verify_json_clean(self, tmp_path, capsys):
        import json

        self._seed_cache(tmp_path)
        assert main([
            "manifest", "verify", "--json", "--cache-dir", str(tmp_path),
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["root"] == str(tmp_path)
        assert report["checked"] == 1
        assert report["failed"] == 0
        assert report["failures"] == []

    def test_manifest_verify_json_flags_tampering(self, tmp_path, capsys):
        import json

        entry = self._seed_cache(tmp_path)
        entry.write_bytes(entry.read_bytes() + b"tampered")
        assert main([
            "manifest", "verify", "--json", "--cache-dir", str(tmp_path),
        ]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["failed"] == 1
        assert report["failures"][0]["path"].endswith(".manifest.json")
        assert any(
            "digest mismatch" in problem
            for problem in report["failures"][0]["problems"]
        )


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8321
        assert args.workers == 2
        assert not args.no_isolate
        assert not args.allow_frontend
        assert not args.allow_shutdown
        assert args.retries is None

    def test_parser_accepts_session_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--workers", "4", "--no-isolate",
            "--preset", "tiny", "--arch", "blocked", "--retries", "5",
            "--allow-frontend", "--allow-shutdown",
        ])
        assert args.port == 0 and args.workers == 4
        assert args.no_isolate and args.allow_frontend
        assert args.preset == "tiny" and args.arch == "blocked"
        assert args.retries == "5"

    def test_bad_retry_budget_exits_2(self, capsys):
        assert main(["serve", "--port", "0", "--retries", "zero"]) == 2
        assert "invalid retry budget" in capsys.readouterr().err

    def test_serve_starts_and_shuts_down(self, tmp_path, capsys):
        """`repro serve` end-to-end in-process: bind an ephemeral port,
        serve one health check, stop via /shutdown."""
        import json
        import threading
        import urllib.request

        from repro.serve import create_server

        server = create_server(
            "127.0.0.1", 0, isolate=False, allow_shutdown=True,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=10
            ) as response:
                assert json.load(response) == {"status": "ok"}
            request = urllib.request.Request(
                server.url + "/shutdown", data=b"", method="POST"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.close()
            thread.join(timeout=5)


class TestInterruptHandling:
    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        """Ctrl-C is a request, not a crash: conventional exit status,
        a one-line notice on stderr, and no traceback."""
        import repro.analysis.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_list", interrupted)
        assert main(["list"]) == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err
