"""Tests for the pluggable simulation kernels (repro.mig.kernel)."""

import random

import pytest

from repro.mig import kernel
from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.mig.simulate import (
    equivalent,
    find_counterexample,
    randomized_rounds,
    simulate,
    truth_tables,
)
from .conftest import make_random_mig

needs_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy not installed"
)


@pytest.fixture(autouse=True)
def _reset_backend():
    """Leave no backend override behind, whatever a test does."""
    yield
    kernel.set_backend(None)


class TestSelection:
    def test_bigint_always_available(self):
        assert "bigint" in kernel.available_backends()

    def test_set_backend_override(self):
        assert kernel.set_backend("bigint").name == "bigint"
        assert kernel.get_kernel().name == "bigint"
        kernel.set_backend(None)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "bigint")
        assert kernel.get_kernel().name == "bigint"
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "auto")
        assert kernel.get_kernel().name in ("bigint", "numpy")

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "auto")
        kernel.set_backend("bigint")
        assert kernel.get_kernel().name == "bigint"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.set_backend("cuda")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.get_kernel()

    def test_numpy_request_fails_loudly_when_absent(self, monkeypatch):
        monkeypatch.setattr(kernel, "_NUMPY", None)
        with pytest.raises(ImportError, match="numpy"):
            kernel._resolve("numpy")
        # auto degrades silently to bigint instead
        assert kernel._resolve("auto").name == "bigint"
        assert kernel.available_backends() == ["bigint"]

    @needs_numpy
    def test_auto_prefers_numpy(self):
        assert kernel._resolve("auto").name == "numpy"


@needs_numpy
class TestBackendParity:
    """The two kernels must be bit-identical on every routed operation."""

    def test_truth_tables_parity_random_migs(self):
        for seed in range(10):
            mig = make_random_mig(4 + seed, 20 + 15 * seed, seed=seed)
            assert truth_tables(mig, kernel=kernel._NUMPY) == truth_tables(
                mig, kernel=kernel._BIGINT
            ), f"seed {seed}"

    def test_truth_tables_parity_is_chunking_invariant(self):
        mig = make_random_mig(10, 120, seed=3)
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        for chunk_bits in (4, 7, 8, 9, 13):
            assert (
                truth_tables(mig, chunk_bits=chunk_bits, kernel=kernel._NUMPY)
                == reference
            ), f"chunk_bits {chunk_bits}"

    @pytest.mark.parametrize("width", [65, 100, 128, 129, 1000, 1024])
    def test_simulate_parity_at_odd_widths(self, width):
        mig = make_random_mig(7, 60, seed=11)
        rng = random.Random(width)
        mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
        assert simulate(mig, words, mask, kernel=kernel._NUMPY) == simulate(
            mig, words, mask, kernel=kernel._BIGINT
        )

    def test_narrow_windows_fall_back_to_bigint_results(self):
        # Below one uint64 lane the numpy kernel delegates; outputs are
        # trivially identical, which this asserts end to end.
        mig = make_random_mig(4, 20, seed=5)
        for width in (1, 7, 64):
            rng = random.Random(width)
            mask = (1 << width) - 1
            words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
            assert simulate(
                mig, words, mask, kernel=kernel._NUMPY
            ) == simulate(mig, words, mask, kernel=kernel._BIGINT)

    def test_equivalent_verdicts_match(self):
        kernel.set_backend("numpy")
        m1 = make_random_mig(9, 70, seed=21)
        assert equivalent(m1, m1.clone())
        flipped = m1.clone()
        flipped._pos[0] = complement(flipped._pos[0])
        assert not equivalent(m1, flipped)
        kernel.set_backend("bigint")
        assert equivalent(m1, m1.clone())
        assert not equivalent(m1, flipped)

    def test_equivalent_after_interleaved_simulate(self):
        # The exhaustive stimulus fast path caches filled PI rows; a
        # generic simulate() in between must invalidate them.
        kernel.set_backend("numpy")
        mig = make_random_mig(8, 60, seed=23)
        reference = truth_tables(mig)
        rng = random.Random(0)
        mask = (1 << 256) - 1
        simulate(mig, [rng.getrandbits(256) for _ in range(8)], mask)
        assert truth_tables(mig) == reference

    def test_plan_invalidated_on_mutation(self):
        kernel.set_backend("numpy")
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "f")
        assert truth_tables(mig) == [0b11101000]
        mig.add_po(mig.add_xor(a, b), "x")
        assert truth_tables(mig) == [0b11101000, 0b01100110]

    def test_equivalent_is_thread_safe_on_shared_graphs(self):
        # The kernel's window buffers are per-graph shared state; the
        # equivalence fast path must hold both plan locks for the sweep.
        import threading

        kernel.set_backend("numpy")
        mig = make_random_mig(9, 120, seed=31)
        clone = mig.clone()
        failures = []

        def worker():
            for _ in range(25):
                if not equivalent(mig, clone):
                    failures.append("false inequivalence")
                    return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_equivalent_same_object_both_sides(self):
        kernel.set_backend("numpy")
        mig = make_random_mig(8, 60, seed=33)
        assert equivalent(mig, mig)  # single plan lock, no deadlock

    def test_counterexample_parity(self):
        m1 = Mig()
        a, b = m1.add_pi("a"), m1.add_pi("b")
        m1.add_po(m1.add_and(a, b), "f")
        m2 = Mig()
        a, b = m2.add_pi("a"), m2.add_pi("b")
        m2.add_po(m2.add_or(a, b), "f")
        for name in ("bigint", "numpy"):
            kernel.set_backend(name)
            cex = find_counterexample(m1, m2)
            assert cex is not None
            assert (cex["a"] & cex["b"]) != (cex["a"] | cex["b"]), name


class TestRandomizedRounds:
    def test_bigint_defaults(self):
        k = kernel._BIGINT
        rounds, width, mask = randomized_rounds(1024, kernel=k)
        assert (rounds, width) == (16, 64)
        assert mask == (1 << 64) - 1

    def test_width_capped_at_samples(self):
        rounds, width, _ = randomized_rounds(16, kernel=kernel._BIGINT)
        assert (rounds, width) == (1, 16)

    def test_explicit_width_wins(self):
        rounds, width, _ = randomized_rounds(
            1024, 256, kernel=kernel._BIGINT
        )
        assert (rounds, width) == (4, 256)

    @needs_numpy
    def test_numpy_prefers_wider_sweeps(self):
        rounds, width, _ = randomized_rounds(4096, kernel=kernel._NUMPY)
        assert width == kernel._NUMPY.random_width
        assert rounds == 4096 // width

    def test_equivalent_accepts_width(self):
        m = make_random_mig(22, 30, seed=13)
        assert equivalent(m, m.clone(), exhaustive_limit=4, width=128)

    def test_find_counterexample_accepts_width(self):
        m = make_random_mig(6, 30, seed=13)
        assert find_counterexample(m, m.clone(), width=128) is None


class TestFlatGateMasks:
    def test_records_carry_xor_masks(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        mig.add_po(mig.add_maj(a, complement(b), c))
        ((node, na, xa, nb, xb, nc, xc),) = mig.flat_gates()
        assert {xa, xb, xc} <= {0, -1}
        assert [xa, xb, xc].count(-1) == 1  # exactly the complemented edge

    def test_histogram_consistent_with_masks(self):
        mig = make_random_mig(6, 50, seed=9)
        hist = mig.complement_histogram()
        assert sum(hist) == mig.num_live_gates()
        assert sum(k * hist[k] for k in range(4)) == sum(
            -(xa + xb + xc) for _, _, xa, _, xb, _, xc in mig.flat_gates()
        )
