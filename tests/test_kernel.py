"""Tests for the pluggable simulation kernels (repro.mig.kernel)."""

import random

import pytest

from repro.mig import kernel
from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.mig.simulate import (
    equivalent,
    find_counterexample,
    randomized_rounds,
    simulate,
    truth_tables,
)
from .conftest import make_random_mig

needs_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy not installed"
)


@pytest.fixture(autouse=True)
def _reset_backend():
    """Leave no backend override behind, whatever a test does."""
    yield
    kernel.set_backend(None)


class TestSelection:
    def test_bigint_always_available(self):
        assert "bigint" in kernel.available_backends()

    def test_set_backend_override(self):
        assert kernel.set_backend("bigint").name == "bigint"
        assert kernel.get_kernel().name == "bigint"
        kernel.set_backend(None)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "bigint")
        assert kernel.get_kernel().name == "bigint"
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "auto")
        assert kernel.get_kernel().name in ("bigint", "numpy-batch")

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "auto")
        kernel.set_backend("bigint")
        assert kernel.get_kernel().name == "bigint"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.set_backend("cuda")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel.BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValueError, match="unknown simulation backend"):
            kernel.get_kernel()

    def test_numpy_request_fails_loudly_when_absent(self, monkeypatch):
        monkeypatch.setattr(kernel, "_NUMPY", None)
        monkeypatch.setattr(kernel, "_NUMPY_BATCH", None)
        with pytest.raises(ImportError, match="numpy"):
            kernel._resolve("numpy")
        with pytest.raises(ImportError, match="numpy"):
            kernel._resolve("numpy-batch")
        # auto degrades silently to bigint instead
        assert kernel._resolve("auto").name == "bigint"
        assert kernel.available_backends() == ["bigint"]

    @needs_numpy
    def test_auto_prefers_numpy_batch(self):
        assert kernel._resolve("auto").name == "numpy-batch"

    @needs_numpy
    def test_all_backends_listed(self):
        assert kernel.available_backends() == [
            "bigint", "numpy", "numpy-batch",
        ]


@needs_numpy
class TestBackendParity:
    """The two kernels must be bit-identical on every routed operation."""

    def test_truth_tables_parity_random_migs(self):
        for seed in range(10):
            mig = make_random_mig(4 + seed, 20 + 15 * seed, seed=seed)
            assert truth_tables(mig, kernel=kernel._NUMPY) == truth_tables(
                mig, kernel=kernel._BIGINT
            ), f"seed {seed}"

    def test_truth_tables_parity_is_chunking_invariant(self):
        mig = make_random_mig(10, 120, seed=3)
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        for chunk_bits in (4, 7, 8, 9, 13):
            assert (
                truth_tables(mig, chunk_bits=chunk_bits, kernel=kernel._NUMPY)
                == reference
            ), f"chunk_bits {chunk_bits}"

    @pytest.mark.parametrize("width", [65, 100, 128, 129, 1000, 1024])
    def test_simulate_parity_at_odd_widths(self, width):
        mig = make_random_mig(7, 60, seed=11)
        rng = random.Random(width)
        mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
        assert simulate(mig, words, mask, kernel=kernel._NUMPY) == simulate(
            mig, words, mask, kernel=kernel._BIGINT
        )

    def test_narrow_windows_fall_back_to_bigint_results(self):
        # Below one uint64 lane the numpy kernel delegates; outputs are
        # trivially identical, which this asserts end to end.
        mig = make_random_mig(4, 20, seed=5)
        for width in (1, 7, 64):
            rng = random.Random(width)
            mask = (1 << width) - 1
            words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
            assert simulate(
                mig, words, mask, kernel=kernel._NUMPY
            ) == simulate(mig, words, mask, kernel=kernel._BIGINT)

    def test_equivalent_verdicts_match(self):
        kernel.set_backend("numpy")
        m1 = make_random_mig(9, 70, seed=21)
        assert equivalent(m1, m1.clone())
        flipped = m1.clone()
        flipped._pos[0] = complement(flipped._pos[0])
        assert not equivalent(m1, flipped)
        kernel.set_backend("bigint")
        assert equivalent(m1, m1.clone())
        assert not equivalent(m1, flipped)

    def test_equivalent_after_interleaved_simulate(self):
        # The exhaustive stimulus fast path caches filled PI rows; a
        # generic simulate() in between must invalidate them.
        kernel.set_backend("numpy")
        mig = make_random_mig(8, 60, seed=23)
        reference = truth_tables(mig)
        rng = random.Random(0)
        mask = (1 << 256) - 1
        simulate(mig, [rng.getrandbits(256) for _ in range(8)], mask)
        assert truth_tables(mig) == reference

    def test_plan_invalidated_on_mutation(self):
        kernel.set_backend("numpy")
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "f")
        assert truth_tables(mig) == [0b11101000]
        mig.add_po(mig.add_xor(a, b), "x")
        assert truth_tables(mig) == [0b11101000, 0b01100110]

    def test_equivalent_is_thread_safe_on_shared_graphs(self):
        # The kernel's window buffers are per-graph shared state; the
        # equivalence fast path must hold both plan locks for the sweep.
        import threading

        kernel.set_backend("numpy")
        mig = make_random_mig(9, 120, seed=31)
        clone = mig.clone()
        failures = []

        def worker():
            for _ in range(25):
                if not equivalent(mig, clone):
                    failures.append("false inequivalence")
                    return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_equivalent_same_object_both_sides(self):
        kernel.set_backend("numpy")
        mig = make_random_mig(8, 60, seed=33)
        assert equivalent(mig, mig)  # single plan lock, no deadlock

    def test_counterexample_parity(self):
        m1 = Mig()
        a, b = m1.add_pi("a"), m1.add_pi("b")
        m1.add_po(m1.add_and(a, b), "f")
        m2 = Mig()
        a, b = m2.add_pi("a"), m2.add_pi("b")
        m2.add_po(m2.add_or(a, b), "f")
        for name in ("bigint", "numpy"):
            kernel.set_backend(name)
            cex = find_counterexample(m1, m2)
            assert cex is not None
            assert (cex["a"] & cex["b"]) != (cex["a"] | cex["b"]), name


class TestSimThreads:
    """Thread-count resolution: flag > scope > override > env > default."""

    @pytest.fixture(autouse=True)
    def _reset_threads(self):
        yield
        kernel.set_sim_threads(None)

    def test_default_is_bounded_by_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(kernel.THREADS_ENV_VAR, raising=False)
        assert kernel.resolve_sim_threads() == min(4, os.cpu_count() or 1)

    def test_env_sets_count(self, monkeypatch):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, "3")
        assert kernel.resolve_sim_threads() == 3

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, "3")
        kernel.set_sim_threads(2)
        assert kernel.resolve_sim_threads() == 2

    def test_scope_beats_override(self, monkeypatch):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, "3")
        kernel.set_sim_threads(2)
        with kernel.sim_threads_scope(5):
            assert kernel.resolve_sim_threads() == 5
            with kernel.sim_threads_scope(7):  # scopes nest
                assert kernel.resolve_sim_threads() == 7
            assert kernel.resolve_sim_threads() == 5
        assert kernel.resolve_sim_threads() == 2

    def test_explicit_value_beats_everything(self, monkeypatch):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, "3")
        with kernel.sim_threads_scope(5):
            assert kernel.resolve_sim_threads(9) == 9

    def test_none_scope_is_noop(self, monkeypatch):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, "6")
        with kernel.sim_threads_scope(None):
            assert kernel.resolve_sim_threads() == 6

    @pytest.mark.parametrize("bad", ["0", "-1", "x"])
    def test_invalid_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(kernel.THREADS_ENV_VAR, bad)
        with pytest.raises(ValueError, match="thread count"):
            kernel.resolve_sim_threads()

    @pytest.mark.parametrize("bad", [0, -3, "many"])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError, match="thread count"):
            kernel.set_sim_threads(bad)


class TestChunkSizing:
    def test_env_override_wins_on_every_kernel(self, monkeypatch):
        monkeypatch.setenv(kernel.CHUNK_BITS_ENV_VAR, "14")
        mig = make_random_mig(6, 30, seed=1)
        kernels = [kernel._BIGINT]
        if kernel.numpy_available():
            kernels += [kernel._NUMPY, kernel._NUMPY_BATCH]
        for k in kernels:
            assert k.chunk_bits_for(mig) == 14, k.name

    def test_env_override_is_clamped(self, monkeypatch):
        mig = make_random_mig(6, 30, seed=1)
        monkeypatch.setenv(kernel.CHUNK_BITS_ENV_VAR, "40")
        assert kernel._BIGINT.chunk_bits_for(mig) == 20
        monkeypatch.setenv(kernel.CHUNK_BITS_ENV_VAR, "1")
        assert kernel._BIGINT.chunk_bits_for(mig) == 7

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel.CHUNK_BITS_ENV_VAR, "wide")
        with pytest.raises(ValueError, match="REPRO_SIM_CHUNK_BITS"):
            kernel._BIGINT.chunk_bits_for(make_random_mig(4, 10, seed=1))

    def test_budget_shrinks_with_node_count(self):
        # Small graphs get the widest window; huge ones shrink toward
        # the bigint floor so the value matrix stays bounded.
        assert kernel._budget_chunk_bits(100) == 18
        huge = (kernel._NUMPY_MEM_BUDGET >> (18 - 6 + 3)) + 1
        assert kernel._budget_chunk_bits(huge) == 17
        assert kernel._budget_chunk_bits(1 << 30) == 13

    @needs_numpy
    def test_batch_widens_window_with_threads(self):
        mig = make_random_mig(6, 30, seed=1)
        with kernel.sim_threads_scope(1):
            solo = kernel._NUMPY_BATCH.chunk_bits_for(mig)
        with kernel.sim_threads_scope(4):
            pooled = kernel._NUMPY_BATCH.chunk_bits_for(mig)
        assert pooled == min(18, solo + 2)


class TestCacheBudgetDetection:
    def test_parse_cache_size_suffixes(self):
        assert kernel._parse_cache_size("32K") == 32 << 10
        assert kernel._parse_cache_size("8M\n") == 8 << 20
        assert kernel._parse_cache_size("1G") == 1 << 30
        assert kernel._parse_cache_size("12288K") == 12288 << 10
        assert kernel._parse_cache_size("512") == 512

    def test_parse_cache_size_garbage(self):
        assert kernel._parse_cache_size("") is None
        assert kernel._parse_cache_size("weird") is None
        assert kernel._parse_cache_size("-4K") is None
        assert kernel._parse_cache_size("0") is None

    def test_detect_llc_prefers_largest_level2plus(self, tmp_path):
        # A synthetic sysfs hierarchy: L1d 32K, L1i 32K, L2 1M, L3 8M.
        for index, (level, kind, size) in enumerate([
            (1, "Data", "32K"),
            (1, "Instruction", "32K"),
            (2, "Unified", "1M"),
            (3, "Unified", "8M"),
        ]):
            entry = tmp_path / f"index{index}"
            entry.mkdir()
            (entry / "level").write_text(f"{level}\n")
            (entry / "type").write_text(f"{kind}\n")
            (entry / "size").write_text(f"{size}\n")
        assert kernel._detect_llc_bytes(str(tmp_path)) == 8 << 20

    def test_detect_llc_skips_malformed_entries(self, tmp_path):
        entry = tmp_path / "index0"
        entry.mkdir()
        (entry / "level").write_text("not-a-number\n")
        assert kernel._detect_llc_bytes(str(tmp_path)) is None

    def test_detect_llc_missing_sysfs(self, tmp_path):
        assert kernel._detect_llc_bytes(str(tmp_path / "absent")) is None

    def test_budget_clamped_and_memoized(self, monkeypatch):
        monkeypatch.setattr(kernel, "_BATCH_BUDGET_CACHE", None)
        monkeypatch.setattr(
            kernel, "_detect_llc_bytes", lambda base=None: 1 << 40
        )
        assert kernel._batch_mem_budget() == kernel._BATCH_BUDGET_MAX
        # Memoized: a changed detector result is not re-read.
        monkeypatch.setattr(
            kernel, "_detect_llc_bytes", lambda base=None: 1 << 10
        )
        assert kernel._batch_mem_budget() == kernel._BATCH_BUDGET_MAX

    def test_budget_falls_back_to_static_default(self, monkeypatch):
        monkeypatch.setattr(kernel, "_BATCH_BUDGET_CACHE", None)
        monkeypatch.setattr(
            kernel, "_detect_llc_bytes", lambda base=None: None
        )
        assert kernel._batch_mem_budget() == kernel._BATCH_MEM_BUDGET
        monkeypatch.setattr(kernel, "_BATCH_BUDGET_CACHE", None)

    def test_tiny_detected_cache_clamps_up(self, monkeypatch):
        monkeypatch.setattr(kernel, "_BATCH_BUDGET_CACHE", None)
        monkeypatch.setattr(
            kernel, "_detect_llc_bytes", lambda base=None: 64 << 10
        )
        assert kernel._batch_mem_budget() == kernel._BATCH_BUDGET_MIN
        monkeypatch.setattr(kernel, "_BATCH_BUDGET_CACHE", None)


@needs_numpy
class TestBatchParity:
    """numpy-batch must be bit-identical to both other kernels."""

    def test_truth_tables_parity_random_migs(self):
        for seed in range(10):
            mig = make_random_mig(4 + seed, 20 + 15 * seed, seed=seed)
            reference = truth_tables(mig, kernel=kernel._BIGINT)
            assert truth_tables(mig, kernel=kernel._NUMPY_BATCH) == reference
            assert truth_tables(mig, kernel=kernel._NUMPY) == reference

    def test_truth_tables_parity_threaded(self):
        with kernel.sim_threads_scope(4):
            for seed in (2, 5):
                mig = make_random_mig(13, 300, seed=seed)
                assert truth_tables(
                    mig, kernel=kernel._NUMPY_BATCH
                ) == truth_tables(mig, kernel=kernel._BIGINT), f"seed {seed}"

    def test_registry_benchmark_sweep(self):
        # Every registry benchmark narrow enough for exhaustive sweeps,
        # on one thread and on a pool.
        from repro.mig.simulate import MAX_EXHAUSTIVE_PIS
        from repro.synth.registry import BENCHMARK_ORDER, build_benchmark

        swept = 0
        for name in BENCHMARK_ORDER:
            mig = build_benchmark(name, preset="tiny")
            if mig.num_pis > MAX_EXHAUSTIVE_PIS:
                continue
            reference = truth_tables(mig, kernel=kernel._BIGINT)
            with kernel.sim_threads_scope(1):
                assert truth_tables(
                    mig, kernel=kernel._NUMPY_BATCH
                ) == reference, name
            with kernel.sim_threads_scope(3):
                assert truth_tables(
                    mig, kernel=kernel._NUMPY_BATCH
                ) == reference, name
            swept += 1
        assert swept >= 10  # the tiny preset keeps most benchmarks narrow

    def test_truth_tables_parity_is_chunking_invariant(self):
        mig = make_random_mig(10, 120, seed=3)
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        for chunk_bits in (4, 7, 8, 9, 13):
            assert (
                truth_tables(
                    mig, chunk_bits=chunk_bits, kernel=kernel._NUMPY_BATCH
                )
                == reference
            ), f"chunk_bits {chunk_bits}"

    @pytest.mark.parametrize("width", [65, 100, 128, 129, 1000, 1024])
    def test_simulate_parity_at_odd_widths(self, width):
        mig = make_random_mig(7, 60, seed=11)
        rng = random.Random(width)
        mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
        assert simulate(
            mig, words, mask, kernel=kernel._NUMPY_BATCH
        ) == simulate(mig, words, mask, kernel=kernel._BIGINT)

    def test_threaded_simulate_splits_lanes(self):
        # Wide enough that the lane-split threaded path actually runs.
        mig = make_random_mig(9, 150, seed=17)
        width = 64 * 64 * 2  # 128 lanes = 2 x _MIN_THREAD_LANES x 2
        rng = random.Random(99)
        mask = (1 << width) - 1
        words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
        reference = simulate(mig, words, mask, kernel=kernel._BIGINT)
        with kernel.sim_threads_scope(4):
            assert simulate(
                mig, words, mask, kernel=kernel._NUMPY_BATCH
            ) == reference

    def test_narrow_windows_fall_back_to_bigint_results(self):
        mig = make_random_mig(4, 20, seed=5)
        for width in (1, 7, 64):
            rng = random.Random(width)
            mask = (1 << width) - 1
            words = [rng.getrandbits(width) for _ in range(mig.num_pis)]
            assert simulate(
                mig, words, mask, kernel=kernel._NUMPY_BATCH
            ) == simulate(mig, words, mask, kernel=kernel._BIGINT)

    def test_exhaustive_window_agreement(self):
        mig = make_random_mig(10, 200, seed=19)
        for base in (0, 256, 768):
            expected = kernel._NUMPY.exhaustive_window(mig, base, 256)
            assert kernel._NUMPY_BATCH.exhaustive_window(
                mig, base, 256
            ) == expected

    def test_equivalent_verdicts_match(self):
        m1 = make_random_mig(9, 70, seed=21)
        flipped = m1.clone()
        flipped._pos[0] = complement(flipped._pos[0])
        for name in ("bigint", "numpy", "numpy-batch"):
            kernel.set_backend(name)
            assert equivalent(m1, m1.clone()), name
            assert not equivalent(m1, flipped), name

    def test_equivalent_threaded_stripes(self):
        m1 = make_random_mig(12, 250, seed=27)
        flipped = m1.clone()
        flipped._pos[0] = complement(flipped._pos[0])
        kernel.set_backend("numpy-batch")
        with kernel.sim_threads_scope(4):
            assert equivalent(m1, m1.clone())
            assert not equivalent(m1, flipped)

    def test_equivalent_same_object_both_sides(self):
        kernel.set_backend("numpy-batch")
        mig = make_random_mig(8, 60, seed=33)
        assert equivalent(mig, mig)

    def test_equivalent_after_interleaved_simulate(self):
        kernel.set_backend("numpy-batch")
        mig = make_random_mig(8, 60, seed=23)
        reference = truth_tables(mig)
        rng = random.Random(0)
        mask = (1 << 256) - 1
        simulate(mig, [rng.getrandbits(256) for _ in range(8)], mask)
        assert truth_tables(mig) == reference

    def test_plan_invalidated_on_mutation(self):
        kernel.set_backend("numpy-batch")
        mig = Mig()
        a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
        mig.add_po(mig.add_maj(a, b, c), "f")
        assert truth_tables(mig) == [0b11101000]
        mig.add_po(mig.add_xor(a, b), "x")
        assert truth_tables(mig) == [0b11101000, 0b01100110]

    def test_counterexample_parity(self):
        # All three kernels draw identical randomized rounds, so they
        # find the same counterexample, not just some counterexample.
        m1 = make_random_mig(9, 100, seed=41)
        m2 = m1.clone()
        m2._pos[-1] = complement(m2._pos[-1])
        found = {}
        for name in ("bigint", "numpy", "numpy-batch"):
            kernel.set_backend(name)
            found[name] = find_counterexample(m1, m2, seed=7)
        assert found["bigint"] is not None
        assert found["numpy"] == found["numpy-batch"]

    def test_per_thread_executables_are_isolated(self):
        import threading

        kernel.set_backend("numpy-batch")
        mig = make_random_mig(10, 150, seed=43)
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        failures = []

        def worker():
            for _ in range(15):
                if truth_tables(mig) != reference:
                    failures.append("parity broke under concurrency")
                    return

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_executable_lru_rebinds_interleaved_widths(self):
        # Interleaved widths on one warm plan must reuse cached
        # executables instead of rebuilding per call (the old
        # single-width cache thrashed here).
        plan = kernel._batch_plan(make_random_mig(8, 60, seed=45))
        a = plan.executable(4, 256)
        b = plan.executable(8, 512)
        assert plan.executable(4, 256) is a
        assert plan.executable(8, 512) is b

    def test_executable_lru_is_bounded(self):
        plan = kernel._batch_plan(make_random_mig(8, 60, seed=45))
        first = plan.executable(2, 128)
        for lanes in range(3, 4 + kernel._EXEC_LRU_SIZE):
            plan.executable(lanes, lanes * 64)
        assert plan.executable(2, 128) is not first  # evicted

    try:
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            num_pis=st.integers(min_value=3, max_value=10),
            num_gates=st.integers(min_value=5, max_value=120),
            seed=st.integers(min_value=0, max_value=1 << 16),
            threads=st.sampled_from([1, 3]),
        )
        def test_property_randomized_parity(
            self, num_pis, num_gates, seed, threads
        ):
            mig = make_random_mig(num_pis, num_gates, seed=seed)
            with kernel.sim_threads_scope(threads):
                assert truth_tables(
                    mig, kernel=kernel._NUMPY_BATCH
                ) == truth_tables(mig, kernel=kernel._BIGINT)
    except ImportError:  # pragma: no cover - hypothesis is optional
        pass


@needs_numpy
class TestDegradationChain:
    """Runtime failures walk numpy-batch -> numpy -> bigint, sticky per
    scope, with one kernel_degraded event per demotion."""

    def _mig(self):
        return make_random_mig(8, 60, seed=51)

    def test_batch_failure_demotes_to_numpy(self, monkeypatch):
        from repro.resilience import events

        mig = self._mig()
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        monkeypatch.setattr(
            kernel._NUMPY_BATCH,
            "_batch_window",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        monkeypatch.setattr(
            kernel._NUMPY_BATCH,
            "_batch_simulate",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with events.capture() as log:
            with kernel.degradation_scope("job-a") as frame:
                assert truth_tables(mig, kernel=kernel._NUMPY_BATCH) == (
                    reference
                )
                assert frame["demoted"] == {"numpy-batch"}
        (event,) = [e for e in log if e["kind"] == "kernel_degraded"]
        assert event["backend"] == "numpy-batch"
        assert event["fallback"] == "numpy"
        assert event["job"] == "job-a"

    def test_full_chain_reaches_bigint(self, monkeypatch):
        from repro.resilience import events

        mig = self._mig()
        reference = truth_tables(mig, kernel=kernel._BIGINT)
        def boom(*a, **k):
            raise RuntimeError("boom")

        # Break the batch engine's own paths AND the per-gate plan the
        # numpy engine compiles inside its guard, so both demote.
        monkeypatch.setattr(kernel._NUMPY_BATCH, "_batch_window", boom)
        monkeypatch.setattr(kernel._NUMPY_BATCH, "_batch_simulate", boom)
        monkeypatch.setattr(kernel, "_numpy_plan", boom)
        with events.capture() as log:
            with kernel.degradation_scope("job-b") as frame:
                assert truth_tables(mig, kernel=kernel._NUMPY_BATCH) == (
                    reference
                )
                assert frame["demoted"] == {"numpy-batch", "numpy"}
        chain = [
            (e["backend"], e["fallback"])
            for e in log
            if e["kind"] == "kernel_degraded"
        ]
        assert ("numpy-batch", "numpy") in chain
        assert ("numpy", "bigint") in chain

    def test_demotion_is_sticky_within_scope_only(self, monkeypatch):
        mig = self._mig()
        calls = {"n": 0}

        def boom(*a, **k):
            calls["n"] += 1
            raise RuntimeError("boom")

        monkeypatch.setattr(kernel._NUMPY_BATCH, "_batch_simulate", boom)
        mask = (1 << 256) - 1
        words = [0] * mig.num_pis
        with kernel.degradation_scope("job-c"):
            kernel._NUMPY_BATCH.simulate(mig, words, mask)
            kernel._NUMPY_BATCH.simulate(mig, words, mask)
            assert calls["n"] == 1  # second call skipped the dead engine
        kernel._NUMPY_BATCH.simulate(mig, words, mask)
        assert calls["n"] == 2  # fresh scope retries the full engine


class TestRandomizedRounds:
    def test_bigint_defaults(self):
        k = kernel._BIGINT
        rounds, width, mask = randomized_rounds(1024, kernel=k)
        assert (rounds, width) == (16, 64)
        assert mask == (1 << 64) - 1

    def test_width_capped_at_samples(self):
        rounds, width, _ = randomized_rounds(16, kernel=kernel._BIGINT)
        assert (rounds, width) == (1, 16)

    def test_explicit_width_wins(self):
        rounds, width, _ = randomized_rounds(
            1024, 256, kernel=kernel._BIGINT
        )
        assert (rounds, width) == (4, 256)

    @needs_numpy
    def test_numpy_prefers_wider_sweeps(self):
        rounds, width, _ = randomized_rounds(4096, kernel=kernel._NUMPY)
        assert width == kernel._NUMPY.random_width
        assert rounds == 4096 // width

    def test_equivalent_accepts_width(self):
        m = make_random_mig(22, 30, seed=13)
        assert equivalent(m, m.clone(), exhaustive_limit=4, width=128)

    def test_find_counterexample_accepts_width(self):
        m = make_random_mig(6, 30, seed=13)
        assert find_counterexample(m, m.clone(), width=128) is None


class TestFlatGateMasks:
    def test_records_carry_xor_masks(self):
        mig = Mig()
        a, b, c = mig.add_pi(), mig.add_pi(), mig.add_pi()
        mig.add_po(mig.add_maj(a, complement(b), c))
        ((node, na, xa, nb, xb, nc, xc),) = mig.flat_gates()
        assert {xa, xb, xc} <= {0, -1}
        assert [xa, xb, xc].count(-1) == 1  # exactly the complemented edge

    def test_histogram_consistent_with_masks(self):
        mig = make_random_mig(6, 50, seed=9)
        hist = mig.complement_histogram()
        assert sum(hist) == mig.num_live_gates()
        assert sum(k * hist[k] for k in range(4)) == sum(
            -(xa + xb + xc) for _, _, xa, _, xb, _, xc in mig.flat_gates()
        )
