"""Unit tests for the signal encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.mig import signal as S


class TestEncoding:
    def test_constants(self):
        assert S.CONST0 == 0
        assert S.CONST1 == 1
        assert S.complement(S.CONST0) == S.CONST1

    def test_make_and_decompose(self):
        sig = S.make_signal(5, True)
        assert S.node_of(sig) == 5
        assert S.is_complemented(sig)
        assert not S.is_complemented(S.make_signal(5, False))

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            S.make_signal(-1)

    @given(st.integers(min_value=0, max_value=10**6), st.booleans())
    def test_roundtrip(self, node, compl):
        sig = S.make_signal(node, compl)
        assert S.node_of(sig) == node
        assert S.is_complemented(sig) == compl

    @given(st.integers(min_value=0, max_value=10**6))
    def test_complement_involution(self, sig):
        assert S.complement(S.complement(sig)) == sig
        assert S.complement(sig) != sig

    def test_apply_complement(self):
        assert S.apply_complement(4, True) == 5
        assert S.apply_complement(4, False) == 4
        assert S.apply_complement(5, True) == 4

    def test_regular(self):
        assert S.regular(7) == 6
        assert S.regular(6) == 6


class TestPredicates:
    def test_is_constant(self):
        assert S.is_constant(0) and S.is_constant(1)
        assert not S.is_constant(2)

    def test_constant_value(self):
        assert S.constant_value(0) == 0
        assert S.constant_value(1) == 1
        with pytest.raises(ValueError):
            S.constant_value(2)

    def test_are_complementary(self):
        assert S.are_complementary(4, 5)
        assert not S.are_complementary(4, 4)
        assert not S.are_complementary(4, 6)


class TestHelpers:
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=100),
        )
    )
    def test_sorted_fanins_is_sorted_permutation(self, abc):
        result = S.sorted_fanins(*abc)
        assert sorted(result) == list(result)
        assert sorted(result) == sorted(abc)

    def test_complement_count(self):
        assert S.complement_count((2, 4, 6)) == 0
        assert S.complement_count((3, 4, 7)) == 2

    def test_format_signal(self):
        assert S.format_signal(0) == "0"
        assert S.format_signal(1) == "1"
        assert S.format_signal(6) == "n3"
        assert S.format_signal(7) == "~n3"
