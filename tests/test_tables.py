"""Tests for the table harness and text renderers."""

import math

import pytest

from repro.analysis.report import (
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.tables import (
    TABLE1_CONFIGS,
    average_row,
    evaluate_benchmark,
    evaluate_mig,
    headline_metrics,
)
from repro.flow import Session
from repro.synth.arithmetic import build_adder

SUBSET = ["adder", "dec", "ctrl"]


@pytest.fixture(scope="module")
def evaluations():
    session = Session(preset="tiny")
    return session.evaluate_suite(SUBSET, caps=[10, 100])


class TestEvaluate:
    def test_all_configs_present(self, evaluations):
        for ev in evaluations:
            for cfg in TABLE1_CONFIGS:
                assert cfg in ev.results
            assert "wmax10" in ev.results
            assert "wmax100" in ev.results

    def test_interface_recorded(self, evaluations):
        by_name = {e.name: e for e in evaluations}
        assert by_name["dec"].num_pis == 4  # tiny preset
        assert by_name["dec"].num_pos == 16

    def test_improvement_relative_to_naive(self, evaluations):
        for ev in evaluations:
            assert ev.improvement("naive") == 0.0

    def test_cap_respected_in_table3_results(self, evaluations):
        for ev in evaluations:
            assert ev.stats("wmax10").max_writes <= 10
            assert ev.stats("wmax100").max_writes <= 100

    def test_verification_enabled_by_default(self):
        # evaluate_mig with a tiny graph runs verify without error
        evaluate_mig(build_adder(width=3), configs=["naive"])

    def test_evaluate_benchmark_by_name(self):
        ev = evaluate_benchmark("dec", preset="tiny", configs=["naive"])
        assert ev.name == "dec"

    def test_custom_effort(self):
        ev = evaluate_mig(
            build_adder(width=3), configs=["dac16"], effort=1
        )
        assert "dac16" in ev.results


class TestAggregates:
    def test_average_row_fields(self, evaluations):
        avg = average_row(evaluations, "ea-full")
        for key in ("min", "max", "stdev", "instructions", "rrams",
                    "improvement"):
            assert key in avg
        assert avg["stdev"] >= 0

    def test_average_improvement_semantics(self, evaluations):
        avg = average_row(evaluations, "naive")
        assert math.isclose(avg["improvement"], 0.0, abs_tol=1e-9)

    def test_headline_metrics(self, evaluations):
        metrics = headline_metrics(evaluations)
        assert set(metrics) == {
            "stdev_improvement_pct",
            "instruction_reduction_pct",
            "rram_reduction_pct",
        }
        # the whole point of the paper: better balance AND fewer
        # instructions than naive at W_max = 100
        assert metrics["stdev_improvement_pct"] > 0
        assert metrics["instruction_reduction_pct"] > 0


class TestRenderers:
    def test_table1_contains_benchmarks_and_avg(self, evaluations):
        text = render_table1(evaluations)
        for name in SUBSET:
            assert name in text
        assert "AVG" in text
        assert "impr." in text

    def test_table2_shape(self, evaluations):
        text = render_table2(evaluations)
        assert "TABLE II" in text
        assert "#I" in text and "#R" in text

    def test_table3_shape(self, evaluations):
        text = render_table3(evaluations, caps=[10, 100])
        assert "TABLE III" in text
        assert "W=10:#I" in text

    def test_table3_missing_cap_dashes(self, evaluations):
        text = render_table3(evaluations, caps=[10, 20])
        assert "-" in text  # cap 20 was not evaluated

    def test_headline_render(self, evaluations):
        text = render_headline(evaluations)
        assert "paper: 86.65%" in text
        assert "%" in text
