"""Tests for the persistent experiment cache (repro.analysis.diskcache)."""

import os

import pytest

from repro.analysis.diskcache import (
    CACHE_ENV_VAR,
    DiskCache,
    code_fingerprint,
    disk_cache_from_env,
)
from repro.analysis.runner import ExperimentCache, run_matrix
from repro.core.manager import PRESETS


class TestDiskCacheBasics:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("result", "adder", "tiny", ("none", "topo"))
        assert cache.load(key) is None
        cache.store(key, {"answer": 42})
        assert cache.load(key) == {"answer": 42}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_cross_instance_sharing(self, tmp_path):
        DiskCache(tmp_path).store(("mig", "x", "tiny"), [1, 2, 3])
        assert DiskCache(tmp_path).load(("mig", "x", "tiny")) == [1, 2, 3]

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert cache.load(("a",)) == 1
        assert cache.load(("b",)) == 2

    def test_fingerprint_isolates_code_versions(self, tmp_path):
        old = DiskCache(tmp_path, fingerprint="0" * 64)
        old.store(("k",), "stale")
        current = DiskCache(tmp_path)
        assert current.load(("k",)) is None  # different shard
        assert current.fingerprint == code_fingerprint()

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert disk_cache_from_env() is None
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "c"))
        cache = disk_cache_from_env()
        assert cache is not None and cache.root == tmp_path / "c"


class TestSingleWriterLock:
    """Entry writes are lockfile-guarded: one writer per key at a time."""

    def test_lock_removed_after_store(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("k",), "v")
        path = cache._path(("k",))
        assert path.is_file()
        assert not path.with_suffix(".lock").exists()

    def test_held_lock_skips_the_write(self, tmp_path, monkeypatch):
        from repro.analysis import diskcache as module

        monkeypatch.setattr(module, "LOCK_WAIT_SECONDS", 0.05)
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.touch()  # a live sibling writer owns this entry
        cache.store(("k",), "v")
        assert not path.exists()  # write-through was skipped...
        assert cache.lock_skips == 1
        assert cache.stats()["session_lock_skips"] == 1
        lock.unlink()
        cache.store(("k",), "v")  # ...and succeeds once the lock clears
        assert cache.load(("k",)) == "v"

    def test_waits_for_sibling_writer_to_finish(self, tmp_path):
        """A briefly-held lock delays the write instead of dropping it —
        this is what lets certificate upgrades land behind a racing
        unverified write."""
        import threading

        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.touch()
        timer = threading.Timer(0.1, lock.unlink)
        timer.start()
        try:
            cache.store(("k",), "v")
        finally:
            timer.cancel()
        assert cache.lock_skips == 0
        assert cache.load(("k",)) == "v"

    def test_replace_predicate_guards_overwrites(self, tmp_path):
        """With replace=, the overwrite decision sees the current entry
        inside the lock: upgrades land, downgrades are refused."""
        cache = DiskCache(tmp_path)
        cache.store(("k",), ("result", 0))
        # a downgrade (narrower certificate) is refused...
        cache.store(
            ("k",), ("result", -1), replace=lambda cur: cur[1] < -1
        )
        assert cache.load(("k",)) == ("result", 0)
        # ...an upgrade goes through...
        cache.store(("k",), ("result", 64), replace=lambda cur: cur[1] < 64)
        assert cache.load(("k",)) == ("result", 64)
        # ...and an absent entry is always written.
        cache.store(("j",), ("result", 8), replace=lambda cur: False)
        assert cache.load(("j",)) == ("result", 8)

    def test_unpicklable_payload_degrades_to_not_persisted(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("k",), lambda: None)  # lambdas cannot pickle
        assert cache.load(("k",)) is None  # miss, not a crash...
        path = cache._path(("k",))
        assert not path.with_suffix(".lock").exists()  # ...lock released
        cache.store(("k",), "v")  # and the key is immediately writable
        assert cache.load(("k",)) == "v"

    def test_stale_lock_is_broken(self, tmp_path):
        from repro.analysis.diskcache import STALE_LOCK_SECONDS

        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.touch()
        stale = 2 * STALE_LOCK_SECONDS
        os.utime(lock, (lock.stat().st_atime - stale,
                        lock.stat().st_mtime - stale))
        cache.store(("k",), "v")  # crashed writer's lock must not wedge us
        assert cache.load(("k",)) == "v"
        assert not lock.exists()
        assert cache.lock_skips == 0

    def test_dead_holder_lock_is_broken_immediately(self, tmp_path):
        """A lock leaked by a SIGTERM'd pool worker (no Python cleanup
        runs) names a dead PID — it must be broken on the first poll,
        not honoured for STALE_LOCK_SECONDS and then *skipped*."""
        import subprocess
        import sys
        import time

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()  # reaped: the PID is guaranteed dead
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.write_text(str(proc.pid))
        start = time.monotonic()
        cache.store(("k",), "v")
        assert time.monotonic() - start < 1.0  # no LOCK_WAIT timeout
        assert cache.load(("k",)) == "v"
        assert cache.lock_skips == 0

    def test_live_holder_lock_is_honoured(self, tmp_path, monkeypatch):
        from repro.analysis import diskcache as module

        monkeypatch.setattr(module, "LOCK_WAIT_SECONDS", 0.05)
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.write_text(str(os.getpid()))  # this very process: alive
        cache.store(("k",), "v")
        assert not path.exists()
        assert cache.lock_skips == 1

    def test_stale_break_leaves_no_tombstone(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.touch()
        DiskCache._break_stale_lock(lock)
        assert not lock.exists()
        assert not list(path.parent.glob("*.tomb-*"))

    def test_losing_breaker_is_a_noop(self, tmp_path, monkeypatch):
        """Two waiters can both judge a lock stale; only the winning
        rename may remove it.  The loser's ``FileNotFoundError`` must be
        swallowed without touching anything — in particular not a fresh
        lock a third writer acquired at the same path in between."""
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        lock = path.with_suffix(".lock")
        lock.touch()
        DiskCache._break_stale_lock(lock)  # the winner
        lock.touch()  # a *fresh* writer took the now-free slot
        before = lock.stat().st_ino

        # the loser: its rename of the original (already-renamed) inode
        # fails — simulate losing the race on the rename itself
        original_rename = os.rename

        def lost_race(src, dst):
            if str(src) == str(lock):
                raise FileNotFoundError(src)
            return original_rename(src, dst)

        monkeypatch.setattr(os, "rename", lost_race)
        DiskCache._break_stale_lock(lock)
        assert lock.exists()  # the fresh writer's lock survived
        assert lock.stat().st_ino == before

    def test_lockfiles_do_not_count_as_entries(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        path.with_suffix(".lock").touch()
        assert cache.stats()["entries"] == 0
        cache.clear()  # clearing sweeps leftover locks too
        assert not path.with_suffix(".lock").exists()


class TestCorruptionRejection:
    def _entry_path(self, cache, key):
        cache.store(key, "payload")
        path = cache._path(key)
        assert path.is_file()
        return path

    def test_truncated_file_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, ("k",))
        path.write_bytes(path.read_bytes()[:-3])
        assert cache.load(("k",)) is None

    def test_flipped_byte_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, ("k",))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.load(("k",)) is None

    def test_bad_magic_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = self._entry_path(cache, ("k",))
        path.write_bytes(b"garbage" + path.read_bytes())
        assert cache.load(("k",)) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # A well-formed entry stored under the wrong file name (e.g. a
        # renamed file) must not be served for the colliding key.
        cache = DiskCache(tmp_path)
        cache.store(("original",), "data")
        os.replace(cache._path(("original",)), cache._path(("other",)))
        assert cache.load(("other",)) is None

    def test_unpicklable_body_is_a_miss(self, tmp_path):
        import hashlib

        from repro.analysis import diskcache

        cache = DiskCache(tmp_path)
        body = b"\x80\x05not really a pickle"
        blob = (
            diskcache._MAGIC
            + hashlib.sha256(body).hexdigest().encode()
            + body
        )
        path = cache._path(("k",))
        path.parent.mkdir(parents=True)
        path.write_bytes(blob)
        assert cache.load(("k",)) is None

    def test_store_failure_is_swallowed(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file blocks the root")
        cache = DiskCache(target)
        cache.store(("k",), "data")  # must not raise
        assert cache.load(("k",)) is None


class TestMaintenance:
    def test_stats_counts_entries_and_shards(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        DiskCache(tmp_path, fingerprint="f" * 64).store(("c",), 3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert len(stats["shards"]) == 2
        current = [s for s in stats["shards"] if s["current"]]
        assert len(current) == 1 and current[0]["entries"] == 2

    def test_clear_current_shard_only(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("a",), 1)
        stale = DiskCache(tmp_path, fingerprint="f" * 64)
        stale.store(("c",), 3)
        assert cache.clear() == 1
        assert cache.load(("a",)) is None
        assert stale.load(("c",)) == 3

    def test_clear_all_versions(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("a",), 1)
        DiskCache(tmp_path, fingerprint="f" * 64).store(("c",), 3)
        assert cache.clear(all_versions=True) == 2
        assert cache.stats()["entries"] == 0


class TestExperimentCacheReadThrough:
    def test_warm_session_compiles_nothing(self, tmp_path):
        cold = ExperimentCache(disk=DiskCache(tmp_path))
        mig = cold.benchmark_mig("adder", "tiny")
        first = cold.compile(mig, PRESETS["naive"])
        assert cold.misses == 1

        warm = ExperimentCache(disk=DiskCache(tmp_path))
        mig2 = warm.benchmark_mig("adder", "tiny")  # deserialised, not built
        assert warm.disk.hits == 1
        second = warm.compile(mig2, PRESETS["naive"])
        assert warm.disk.hits == 2  # result also served from disk
        assert second is not first  # a different process's object...
        assert (
            second.num_instructions,
            second.num_rrams,
            second.program.write_counts(),
        ) == (
            first.num_instructions,
            first.num_rrams,
            first.program.write_counts(),
        )

    def test_hand_built_migs_stay_session_only(self, tmp_path):
        from repro.synth.arithmetic import build_adder

        cache = ExperimentCache(disk=DiskCache(tmp_path))
        cache.compile(build_adder(width=3), PRESETS["naive"])
        # nothing persisted: the MIG has no registry identity
        assert cache.disk.stats()["entries"] == 0

    def test_verification_certificate_persists(self, tmp_path):
        cold = ExperimentCache(disk=DiskCache(tmp_path))
        mig = cold.benchmark_mig("dec", "tiny")
        cold.compile(mig, PRESETS["naive"], verify=True, verify_patterns=16)

        warm = ExperimentCache(disk=DiskCache(tmp_path))
        mig2 = warm.benchmark_mig("dec", "tiny")
        assert warm.has(mig2, PRESETS["naive"], verified_patterns=16)
        assert not warm.has(mig2, PRESETS["naive"], verified_patterns=64)

    def test_certificate_never_downgraded_on_disk(self, tmp_path):
        # Session B holds an unverified memory entry; session A persists
        # a wide certificate meanwhile; B's later narrow verification
        # must not overwrite A's certificate.
        session_b = ExperimentCache(disk=DiskCache(tmp_path))
        mig_b = session_b.benchmark_mig("dec", "tiny")
        session_b.compile(mig_b, PRESETS["naive"])  # disk cert: 0

        session_a = ExperimentCache(disk=DiskCache(tmp_path))
        session_a.compile(
            session_a.benchmark_mig("dec", "tiny"),
            PRESETS["naive"],
            verify=True,
            verify_patterns=256,
        )  # disk cert: 256

        session_b.compile(
            mig_b, PRESETS["naive"], verify=True, verify_patterns=16
        )  # memory upgrade to 16 must not clobber the 256 on disk

        fresh = ExperimentCache(disk=DiskCache(tmp_path))
        assert fresh.has(
            fresh.benchmark_mig("dec", "tiny"),
            PRESETS["naive"],
            verified_patterns=256,
        )

    def test_corrupt_entry_recompiles(self, tmp_path):
        from repro.analysis.runner import config_key

        disk = DiskCache(tmp_path)
        cold = ExperimentCache(disk=disk)
        mig = cold.benchmark_mig("ctrl", "tiny")
        reference = cold.compile(mig, PRESETS["naive"])
        key = ("result", "ctrl", "tiny", config_key(PRESETS["naive"]))
        path = disk._path(key)
        path.write_bytes(b"corrupt")

        warm = ExperimentCache(disk=DiskCache(tmp_path))
        result = warm.compile(
            warm.benchmark_mig("ctrl", "tiny"), PRESETS["naive"]
        )
        assert result.program.write_counts() == reference.program.write_counts()


class TestRunMatrixDiskSharing:
    SUBSET = ["adder", "dec", "ctrl"]

    def _signature(self, evaluations):
        return [
            {
                key: (
                    res.num_instructions,
                    res.num_rrams,
                    tuple(res.program.write_counts()),
                )
                for key, res in ev.results.items()
            }
            for ev in evaluations
        ]

    def test_warm_serial_run_is_pure_disk_io(self, tmp_path):
        cold = ExperimentCache(disk=DiskCache(tmp_path))
        reference = run_matrix(
            self.SUBSET, preset="tiny", verify=False, cache=cold
        )
        pairs = cold.misses
        assert pairs == len(self.SUBSET) * 5

        warm = ExperimentCache(disk=DiskCache(tmp_path))
        rerun = run_matrix(
            self.SUBSET, preset="tiny", verify=False, cache=warm
        )
        # every benchmark and every result deserialised, none compiled
        assert warm.disk.hits == len(self.SUBSET) + pairs
        assert len(warm._rewrites) == 0  # no rewriting happened
        assert self._signature(rerun) == self._signature(reference)

    @pytest.mark.slow
    def test_workers_share_the_disk_root(self, tmp_path):
        # Cold run entirely inside worker processes...
        cold = ExperimentCache(disk=DiskCache(tmp_path))
        fanned = run_matrix(
            self.SUBSET, preset="tiny", verify=False, parallel=2, cache=cold
        )
        # ...must leave a cache a fresh serial process can fully reuse:
        # cross-process sharing via the filesystem.
        warm = ExperimentCache(disk=DiskCache(tmp_path))
        rerun = run_matrix(
            self.SUBSET, preset="tiny", verify=False, cache=warm
        )
        assert len(warm._rewrites) == 0
        assert self._signature(rerun) == self._signature(fanned)
        reference = run_matrix(self.SUBSET, preset="tiny", verify=False)
        assert self._signature(rerun) == self._signature(reference)
