"""End-to-end integration: every benchmark x every configuration.

The heart of the reproduction's trust story: for each of the 18 benchmark
generators (tiny preset) and each of the five Table I configurations plus
a capped full-management run, the compiled RM3 program is executed on the
behavioural RRAM array and checked bit-parallel against MIG simulation.
"""

import pytest

from repro.core.manager import PRESETS, compile_pipeline, full_management
from repro.plim.memory import RramArray, estimate_lifetime
from repro.plim.verify import verify_program
from repro.synth.registry import BENCHMARK_ORDER, build_benchmark

CONFIGS = list(PRESETS.values()) + [full_management(10)]


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_benchmark_all_configs_verified(name):
    mig = build_benchmark(name, preset="tiny")
    results = {}
    for cfg in CONFIGS:
        result = compile_pipeline(mig, cfg)
        verify_program(result.program, mig, patterns=64)
        results[cfg.name] = result

    # paper-stated invariant: min-write changes neither #I nor #R
    assert (
        results["min-write"].num_instructions
        == results["dac16"].num_instructions
    )
    assert results["min-write"].num_rrams == results["dac16"].num_rrams

    # the cap is a hard bound
    capped = results["ea-full+wmax10"]
    assert capped.stats.max_writes <= 10


def test_suite_level_trends_tiny():
    """Aggregate trends over the full tiny suite must match the paper's
    direction: rewriting shrinks programs; the endurance stack improves
    the average write balance."""
    improvements = []
    instr_naive = instr_ea = 0
    for name in BENCHMARK_ORDER:
        mig = build_benchmark(name, preset="tiny")
        naive = compile_pipeline(mig, PRESETS["naive"])
        ea = compile_pipeline(mig, PRESETS["ea-full"])
        instr_naive += naive.num_instructions
        instr_ea += ea.num_instructions
        if naive.stats.stdev > 0:
            improvements.append(
                1.0 - ea.stats.stdev / naive.stats.stdev
            )
    assert instr_ea < instr_naive  # Table II direction
    avg_impr = sum(improvements) / len(improvements)
    assert avg_impr > 0.30  # Table I direction (paper: 0.72 at full scale)


def test_lifetime_story_end_to_end():
    """Executing the managed program repeatedly on an endurance-limited
    array survives strictly longer than the naive program."""
    mig = build_benchmark("sin", preset="tiny")
    naive = compile_pipeline(mig, PRESETS["naive"])
    managed = compile_pipeline(mig, full_management(20))

    naive_life = estimate_lifetime(naive.program.write_counts(), endurance=10**6)
    managed_life = estimate_lifetime(
        managed.program.write_counts(), endurance=10**6
    )
    assert managed_life.executions > naive_life.executions

    # run the managed program on a budgeted array: it must complete
    # exactly `endurance // max_writes` times before a cell dies
    from repro.plim.controller import PlimController
    from repro.plim.memory import EnduranceExhaustedError

    peak = managed.stats.max_writes
    budget = peak * 3  # room for exactly 3 executions
    array = RramArray(managed.program.num_cells, endurance=budget)
    controller = PlimController(array)
    words = [0] * mig.num_pis
    for _ in range(3):
        controller.run(managed.program, words)
    with pytest.raises(EnduranceExhaustedError):
        controller.run(managed.program, words)


def test_rewritten_program_equivalence_default_preset_sample():
    """A default-preset benchmark to make sure mid-size graphs stay
    correct (the tiny preset may hide scaling bugs)."""
    mig = build_benchmark("int2float", preset="default")
    result = compile_pipeline(mig, PRESETS["ea-full"])
    verify_program(result.program, mig, patterns=128)
