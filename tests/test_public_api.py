"""Public-API snapshot: guards ``repro.__all__`` and ``repro.flow``.

Downstream code (notebooks, the examples, the CI smoke jobs) imports
these names; accidental removals or renames must fail a test, not a
user.  Extending the API is fine — update the snapshot in the same
change, deliberately.
"""

import repro
import repro.arch
import repro.flow

#: The blessed root namespace.  Additions are appended deliberately;
#: removals are breaking changes and need a deprecation cycle.
ROOT_API = [
    "Architecture",
    "BENCHMARKS",
    "CompilationResult",
    "EnduranceConfig",
    "Flow",
    "FlowResult",
    "Mig",
    "PRESETS",
    "PlimController",
    "Program",
    "RramArray",
    "Session",
    "WriteTrafficStats",
    "available_architectures",
    "build_benchmark",
    "compile_with_management",
    "equivalent",
    "full_management",
    "get_architecture",
    "register_architecture",
    "simulate",
    "truth_tables",
    "verify_program",
]

#: The blessed repro.arch namespace (the machine-model layer).
ARCH_API = [
    "ARCH_ENV_VAR",
    "Architecture",
    "ArchitectureError",
    "CostModel",
    "DEFAULT_ARCHITECTURE",
    "EnduranceModel",
    "Geometry",
    "arch_from_env",
    "available_architectures",
    "get_architecture",
    "register_architecture",
    "resolve_architecture",
]

#: The blessed repro.flow namespace.
FLOW_API = [
    "BACKEND_CHOICES",
    "Flow",
    "FlowResult",
    "PRESET_CHOICES",
    "STAGES",
    "Session",
    "SessionSpec",
    "StageArtifact",
    "StageEvent",
    "resolve_cache_dir",
]


class TestRootNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == sorted(ROOT_API)

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_flow_types_exported_at_root(self):
        assert repro.Session is repro.flow.Session
        assert repro.Flow is repro.flow.Flow


class TestArchNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.arch.__all__) == sorted(ARCH_API)

    def test_every_name_resolves(self):
        for name in repro.arch.__all__:
            assert getattr(repro.arch, name) is not None

    def test_arch_types_exported_at_root(self):
        assert repro.Architecture is repro.arch.Architecture
        assert repro.get_architecture is repro.arch.get_architecture

    def test_builtin_registry_stable(self):
        """The three shipped machines (and the default) are API."""
        for name in ("dac16", "endurance", "blocked"):
            assert name in repro.arch.available_architectures()
        assert repro.arch.DEFAULT_ARCHITECTURE == "endurance"


class TestFlowNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.flow.__all__) == sorted(FLOW_API)

    def test_every_name_resolves(self):
        for name in repro.flow.__all__:
            assert getattr(repro.flow, name) is not None

    def test_stage_vocabulary_stable(self):
        assert repro.flow.STAGES == ("source", "rewrite", "compile", "verify")

    def test_choice_lists_stable(self):
        assert repro.flow.PRESET_CHOICES == ["tiny", "default", "paper"]
        assert repro.flow.BACKEND_CHOICES == ["auto", "bigint", "numpy"]
