"""Public-API snapshot: guards ``repro.__all__`` and ``repro.flow``.

Downstream code (notebooks, the examples, the CI smoke jobs) imports
these names; accidental removals or renames must fail a test, not a
user.  Extending the API is fine — update the snapshot in the same
change, deliberately.
"""

import repro
import repro.arch
import repro.cachesvc
import repro.flow
import repro.opt
import repro.resilience
import repro.serve

#: The blessed root namespace.  Additions are appended deliberately;
#: removals are breaking changes and need a deprecation cycle.
ROOT_API = [
    "Architecture",
    "BENCHMARKS",
    "CompilationResult",
    "EnduranceConfig",
    "Flow",
    "FlowResult",
    "Mig",
    "Optimizer",
    "OptimizerSpec",
    "PRESETS",
    "PermanentFault",
    "PlimController",
    "Program",
    "RemoteCache",
    "ReproError",
    "ReproServer",
    "RetryPolicy",
    "RramArray",
    "Session",
    "Source",
    "Timeouts",
    "TransientFault",
    "WriteTrafficStats",
    "available_architectures",
    "available_objectives",
    "available_sources",
    "available_strategies",
    "build_benchmark",
    "compile_with_management",
    "create_cache_server",
    "create_server",
    "equivalent",
    "full_management",
    "get_architecture",
    "iter_manifests",
    "mig_function",
    "parse_faults",
    "register_architecture",
    "register_objective",
    "register_source",
    "resolve_cache_url",
    "resolve_optimizer",
    "resolve_source",
    "simulate",
    "truth_tables",
    "verify_manifest",
    "verify_program",
]

#: The blessed repro.arch namespace (the machine-model layer).
ARCH_API = [
    "ARCH_ENV_VAR",
    "Architecture",
    "ArchitectureError",
    "CostModel",
    "DEFAULT_ARCHITECTURE",
    "EnduranceModel",
    "Geometry",
    "arch_from_env",
    "available_architectures",
    "get_architecture",
    "register_architecture",
    "resolve_architecture",
]

#: The blessed repro.opt namespace (the cost-guided optimizer layer).
OPT_API = [
    "ALGORITHM1_STEPS",
    "ALGORITHM2_STEPS",
    "DEFAULT_EFFORT",
    "DEFAULT_LOOKAHEAD",
    "DEFAULT_OBJECTIVE",
    "DEFAULT_OPTIMIZER",
    "OPT_ENV_VAR",
    "Objective",
    "OptLike",
    "Optimizer",
    "OptimizerSpec",
    "RewritePass",
    "SCRIPTS",
    "Strategy",
    "atomic_passes",
    "available_objectives",
    "available_passes",
    "available_strategies",
    "candidate_passes",
    "estimated_write_cost",
    "get_objective",
    "get_pass",
    "get_strategy",
    "opt_from_env",
    "register_objective",
    "register_pass",
    "register_strategy",
    "resolve_optimizer",
    "rewrite",
    "rewrite_dac16",
    "rewrite_endurance_aware",
]

#: The blessed repro.source namespace (the circuit-source layer).
SOURCE_API = [
    "FileSource",
    "FrontendSource",
    "MigSource",
    "RegistrySource",
    "SOURCE_ENV_VAR",
    "Source",
    "SourceLike",
    "available_sources",
    "get_source",
    "register_source",
    "resolve_source",
    "source_from_env",
]

#: The blessed repro.resilience namespace (the reliability substrate).
RESILIENCE_API = [
    "DEFAULT_POLICY",
    "FAULTS_ENV_VAR",
    "FaultDirective",
    "FaultInjected",
    "FaultPlan",
    "KernelDegradedError",
    "MANIFEST_SCHEMA",
    "PermanentFault",
    "RETRY_ENV_VAR",
    "ReproError",
    "RetriesExhaustedError",
    "RetryPolicy",
    "StageTimeoutError",
    "TIMEOUT_ENV_VAR",
    "Timeouts",
    "TransientFault",
    "WorkerCrashError",
    "active_plan",
    "append_manifest_events",
    "call_with_retry",
    "classify_transient",
    "events",
    "inject",
    "iter_manifests",
    "load_manifest",
    "manifest_path",
    "parse_faults",
    "resolve_retry",
    "resolve_timeouts",
    "time_limit",
    "timeouts_from_env",
    "verify_manifest",
    "write_manifest",
]

#: The blessed repro.serve namespace (compilation-as-a-service).
SERVE_API = [
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStore",
    "ReproServer",
    "Response",
    "SchemaError",
    "create_server",
    "handle",
    "job_payload",
    "parse_job",
    "stats_payload",
    "summarize_compilation",
]

#: The blessed repro.cachesvc namespace (the shared compile cache).
CACHESVC_API = [
    "CACHE_URL_ENV_VAR",
    "CacheServer",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_PORT",
    "MemoryTier",
    "RemoteCache",
    "create_cache_server",
    "resolve_cache_url",
]

#: The blessed repro.flow namespace.
FLOW_API = [
    "BACKEND_CHOICES",
    "Flow",
    "FlowResult",
    "PRESET_CHOICES",
    "STAGES",
    "Session",
    "SessionSpec",
    "StageArtifact",
    "StageEvent",
    "resolve_cache_dir",
]


class TestRootNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == sorted(ROOT_API)

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_flow_types_exported_at_root(self):
        assert repro.Session is repro.flow.Session
        assert repro.Flow is repro.flow.Flow


class TestArchNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.arch.__all__) == sorted(ARCH_API)

    def test_every_name_resolves(self):
        for name in repro.arch.__all__:
            assert getattr(repro.arch, name) is not None

    def test_arch_types_exported_at_root(self):
        assert repro.Architecture is repro.arch.Architecture
        assert repro.get_architecture is repro.arch.get_architecture

    def test_builtin_registry_stable(self):
        """The three shipped machines (and the default) are API."""
        for name in ("dac16", "endurance", "blocked"):
            assert name in repro.arch.available_architectures()
        assert repro.arch.DEFAULT_ARCHITECTURE == "endurance"


class TestOptNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.opt.__all__) == sorted(OPT_API)

    def test_every_name_resolves(self):
        for name in repro.opt.__all__:
            assert getattr(repro.opt, name) is not None

    def test_opt_types_exported_at_root(self):
        assert repro.OptimizerSpec is repro.opt.OptimizerSpec
        assert repro.resolve_optimizer is repro.opt.resolve_optimizer

    def test_builtin_registries_stable(self):
        """The shipped strategies/objectives (and defaults) are API."""
        for name in ("script", "greedy", "budget"):
            assert name in repro.opt.available_strategies()
        for name in ("node_count", "depth", "write_cost"):
            assert name in repro.opt.available_objectives()
        assert repro.opt.DEFAULT_OPTIMIZER == "script"
        assert repro.opt.DEFAULT_OBJECTIVE == "write_cost"


class TestSourceNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.source.__all__) == sorted(SOURCE_API)

    def test_every_name_resolves(self):
        for name in repro.source.__all__:
            assert getattr(repro.source, name) is not None

    def test_source_kinds_stable(self):
        kinds = {
            cls.kind
            for cls in (
                repro.source.RegistrySource,
                repro.source.FileSource,
                repro.source.FrontendSource,
                repro.source.MigSource,
            )
        }
        assert kinds == {"registry", "file", "frontend", "graph"}


class TestResilienceNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.resilience.__all__) == sorted(RESILIENCE_API)

    def test_every_name_resolves(self):
        for name in repro.resilience.__all__:
            assert getattr(repro.resilience, name) is not None

    def test_resilience_types_exported_at_root(self):
        assert repro.RetryPolicy is repro.resilience.RetryPolicy
        assert repro.Timeouts is repro.resilience.Timeouts
        assert repro.verify_manifest is repro.resilience.verify_manifest

    def test_fault_points_stable(self):
        """The injection-point vocabulary is API for $REPRO_FAULTS."""
        from repro.resilience import faults

        assert faults.POINTS == (
            "worker_crash",
            "worker_hang",
            "job_fail",
            "cache_corrupt",
            "cache_io",
            "kernel_fail",
        )

    def test_error_taxonomy(self):
        """Transience is carried on the error type, permanently."""
        assert repro.resilience.TransientFault("x").transient
        assert not repro.resilience.PermanentFault("x").transient
        assert issubclass(
            repro.resilience.WorkerCrashError, repro.resilience.ReproError
        )


class TestServeNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.serve.__all__) == sorted(SERVE_API)

    def test_every_name_resolves(self):
        for name in repro.serve.__all__:
            assert getattr(repro.serve, name) is not None

    def test_serve_types_exported_at_root(self):
        assert repro.ReproServer is repro.serve.ReproServer
        assert repro.create_server is repro.serve.create_server

    def test_env_var_names_stable(self):
        """Environment knobs are API for scripts and CI jobs."""
        assert repro.resilience.RETRY_ENV_VAR == "REPRO_RETRIES"
        assert repro.resilience.TIMEOUT_ENV_VAR == "REPRO_TIMEOUT"


class TestCachesvcNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.cachesvc.__all__) == sorted(CACHESVC_API)

    def test_every_name_resolves(self):
        for name in repro.cachesvc.__all__:
            assert getattr(repro.cachesvc, name) is not None

    def test_cachesvc_types_exported_at_root(self):
        assert repro.RemoteCache is repro.cachesvc.RemoteCache
        assert repro.create_cache_server is repro.cachesvc.create_cache_server
        assert repro.resolve_cache_url is repro.cachesvc.resolve_cache_url

    def test_env_var_name_stable(self):
        """$REPRO_CACHE_URL is API for scripts and CI jobs."""
        assert repro.cachesvc.CACHE_URL_ENV_VAR == "REPRO_CACHE_URL"


class TestFlowNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.flow.__all__) == sorted(FLOW_API)

    def test_every_name_resolves(self):
        for name in repro.flow.__all__:
            assert getattr(repro.flow, name) is not None

    def test_stage_vocabulary_stable(self):
        assert repro.flow.STAGES == ("source", "rewrite", "compile", "verify")

    def test_choice_lists_stable(self):
        assert repro.flow.PRESET_CHOICES == ["tiny", "default", "paper"]
        assert repro.flow.BACKEND_CHOICES == [
            "auto", "bigint", "numpy", "numpy-batch",
        ]
