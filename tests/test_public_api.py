"""Public-API snapshot: guards ``repro.__all__`` and ``repro.flow``.

Downstream code (notebooks, the examples, the CI smoke jobs) imports
these names; accidental removals or renames must fail a test, not a
user.  Extending the API is fine — update the snapshot in the same
change, deliberately.
"""

import repro
import repro.arch
import repro.flow
import repro.opt

#: The blessed root namespace.  Additions are appended deliberately;
#: removals are breaking changes and need a deprecation cycle.
ROOT_API = [
    "Architecture",
    "BENCHMARKS",
    "CompilationResult",
    "EnduranceConfig",
    "Flow",
    "FlowResult",
    "Mig",
    "Optimizer",
    "OptimizerSpec",
    "PRESETS",
    "PlimController",
    "Program",
    "RramArray",
    "Session",
    "Source",
    "WriteTrafficStats",
    "available_architectures",
    "available_objectives",
    "available_sources",
    "available_strategies",
    "build_benchmark",
    "compile_with_management",
    "equivalent",
    "full_management",
    "get_architecture",
    "mig_function",
    "register_architecture",
    "register_objective",
    "register_source",
    "resolve_optimizer",
    "resolve_source",
    "simulate",
    "truth_tables",
    "verify_program",
]

#: The blessed repro.arch namespace (the machine-model layer).
ARCH_API = [
    "ARCH_ENV_VAR",
    "Architecture",
    "ArchitectureError",
    "CostModel",
    "DEFAULT_ARCHITECTURE",
    "EnduranceModel",
    "Geometry",
    "arch_from_env",
    "available_architectures",
    "get_architecture",
    "register_architecture",
    "resolve_architecture",
]

#: The blessed repro.opt namespace (the cost-guided optimizer layer).
OPT_API = [
    "ALGORITHM1_STEPS",
    "ALGORITHM2_STEPS",
    "DEFAULT_EFFORT",
    "DEFAULT_LOOKAHEAD",
    "DEFAULT_OBJECTIVE",
    "DEFAULT_OPTIMIZER",
    "OPT_ENV_VAR",
    "Objective",
    "OptLike",
    "Optimizer",
    "OptimizerSpec",
    "RewritePass",
    "SCRIPTS",
    "Strategy",
    "atomic_passes",
    "available_objectives",
    "available_passes",
    "available_strategies",
    "candidate_passes",
    "estimated_write_cost",
    "get_objective",
    "get_pass",
    "get_strategy",
    "opt_from_env",
    "register_objective",
    "register_pass",
    "register_strategy",
    "resolve_optimizer",
    "rewrite",
    "rewrite_dac16",
    "rewrite_endurance_aware",
]

#: The blessed repro.source namespace (the circuit-source layer).
SOURCE_API = [
    "FileSource",
    "FrontendSource",
    "MigSource",
    "RegistrySource",
    "SOURCE_ENV_VAR",
    "Source",
    "SourceLike",
    "available_sources",
    "get_source",
    "register_source",
    "resolve_source",
    "source_from_env",
]

#: The blessed repro.flow namespace.
FLOW_API = [
    "BACKEND_CHOICES",
    "Flow",
    "FlowResult",
    "PRESET_CHOICES",
    "STAGES",
    "Session",
    "SessionSpec",
    "StageArtifact",
    "StageEvent",
    "resolve_cache_dir",
]


class TestRootNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.__all__) == sorted(ROOT_API)

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_flow_types_exported_at_root(self):
        assert repro.Session is repro.flow.Session
        assert repro.Flow is repro.flow.Flow


class TestArchNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.arch.__all__) == sorted(ARCH_API)

    def test_every_name_resolves(self):
        for name in repro.arch.__all__:
            assert getattr(repro.arch, name) is not None

    def test_arch_types_exported_at_root(self):
        assert repro.Architecture is repro.arch.Architecture
        assert repro.get_architecture is repro.arch.get_architecture

    def test_builtin_registry_stable(self):
        """The three shipped machines (and the default) are API."""
        for name in ("dac16", "endurance", "blocked"):
            assert name in repro.arch.available_architectures()
        assert repro.arch.DEFAULT_ARCHITECTURE == "endurance"


class TestOptNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.opt.__all__) == sorted(OPT_API)

    def test_every_name_resolves(self):
        for name in repro.opt.__all__:
            assert getattr(repro.opt, name) is not None

    def test_opt_types_exported_at_root(self):
        assert repro.OptimizerSpec is repro.opt.OptimizerSpec
        assert repro.resolve_optimizer is repro.opt.resolve_optimizer

    def test_builtin_registries_stable(self):
        """The shipped strategies/objectives (and defaults) are API."""
        for name in ("script", "greedy", "budget"):
            assert name in repro.opt.available_strategies()
        for name in ("node_count", "depth", "write_cost"):
            assert name in repro.opt.available_objectives()
        assert repro.opt.DEFAULT_OPTIMIZER == "script"
        assert repro.opt.DEFAULT_OBJECTIVE == "write_cost"


class TestSourceNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.source.__all__) == sorted(SOURCE_API)

    def test_every_name_resolves(self):
        for name in repro.source.__all__:
            assert getattr(repro.source, name) is not None

    def test_source_kinds_stable(self):
        kinds = {
            cls.kind
            for cls in (
                repro.source.RegistrySource,
                repro.source.FileSource,
                repro.source.FrontendSource,
                repro.source.MigSource,
            )
        }
        assert kinds == {"registry", "file", "frontend", "graph"}


class TestFlowNamespace:
    def test_all_snapshot(self):
        assert sorted(repro.flow.__all__) == sorted(FLOW_API)

    def test_every_name_resolves(self):
        for name in repro.flow.__all__:
            assert getattr(repro.flow, name) is not None

    def test_stage_vocabulary_stable(self):
        assert repro.flow.STAGES == ("source", "rewrite", "compile", "verify")

    def test_choice_lists_stable(self):
        assert repro.flow.PRESET_CHOICES == ["tiny", "default", "paper"]
        assert repro.flow.BACKEND_CHOICES == ["auto", "bigint", "numpy"]
