"""Property tests for the MIG Boolean algebra.

Every axiom used by the rewriting scripts is checked two ways:

1. as a *logical identity*, by exhaustive truth-table enumeration over the
   participating variables;
2. as an *implementation*, by asserting that each cost-aware transform in
   :mod:`repro.mig.algebra` preserves functional equivalence on randomly
   generated MIGs (hypothesis drives the generator seeds).
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.mig import algebra
from repro.mig.graph import Mig
from repro.mig.rewrite import (
    PASSES,
    associativity_pass,
    complementary_associativity_pass,
    distributivity_rl_pass,
    inverter_pairs_pass,
    inverter_triples_pass,
    majority_pass,
)
from repro.mig.simulate import equivalent
from .conftest import make_random_mig


def maj(x, y, z):
    return (x & y) | (x & z) | (y & z)


class TestAxiomIdentities:
    """The identities themselves, over all Boolean assignments."""

    def test_majority_axiom(self):
        for x, z in product((0, 1), repeat=2):
            assert maj(x, x, z) == x
            assert maj(x, 1 - x, z) == z

    def test_commutativity(self):
        for x, y, z in product((0, 1), repeat=3):
            assert maj(x, y, z) == maj(y, x, z) == maj(z, y, x)

    def test_associativity(self):
        # <x u <y u z>> = <z u <y u x>>
        for x, y, z, u in product((0, 1), repeat=4):
            assert maj(x, u, maj(y, u, z)) == maj(z, u, maj(y, u, x))

    def test_distributivity(self):
        # <x y <u v z>> = <<x y u> <x y v> z>
        for x, y, u, v, z in product((0, 1), repeat=5):
            assert maj(x, y, maj(u, v, z)) == maj(
                maj(x, y, u), maj(x, y, v), z
            )

    def test_inverter_propagation(self):
        # ~<x y z> = <~x ~y ~z>  (self-duality)
        for x, y, z in product((0, 1), repeat=3):
            assert 1 - maj(x, y, z) == maj(1 - x, 1 - y, 1 - z)

    def test_complementary_associativity(self):
        # Psi.C: <x u <y ~u z>> = <x u <y x z>>
        for x, y, z, u in product((0, 1), repeat=4):
            assert maj(x, u, maj(y, 1 - u, z)) == maj(x, u, maj(y, x, z))

    def test_relevance_two_complement_rewrite(self):
        # <~x ~y z> = ~<x y ~z>  (the Omega.I(R->L) rules 2-3 shape)
        for x, y, z in product((0, 1), repeat=3):
            assert maj(1 - x, 1 - y, z) == 1 - maj(x, y, 1 - z)


def _pass_preserves(pass_fn, seed, num_pis=6, num_gates=45):
    mig = make_random_mig(num_pis, num_gates, seed=seed)
    rewritten = pass_fn(mig)
    assert equivalent(mig, rewritten), f"{pass_fn.__name__} broke seed {seed}"
    return mig, rewritten


class TestPassesPreserveEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_majority_pass(self, seed):
        _pass_preserves(majority_pass, seed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_distributivity_pass(self, seed):
        _pass_preserves(distributivity_rl_pass, seed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_associativity_pass(self, seed):
        _pass_preserves(associativity_pass, seed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_complementary_associativity_pass(self, seed):
        _pass_preserves(complementary_associativity_pass, seed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_inverter_pairs_pass(self, seed):
        _pass_preserves(inverter_pairs_pass, seed)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_inverter_triples_pass(self, seed):
        _pass_preserves(inverter_triples_pass, seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_passes_never_increase_live_size(seed):
    """All size-targeting passes are monotone on live gate count."""
    mig = make_random_mig(6, 45, seed=seed)
    base = mig.cleanup().num_live_gates()
    for name in ("M", "D_rl", "A", "Psi_C"):
        after = PASSES[name](mig).cleanup().num_live_gates()
        assert after <= base, f"pass {name} grew the graph"


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_inverter_pairs_normalises(seed):
    """After Omega.I(R->L)(1-3) no live gate has 2+ complemented
    non-constant fanins."""
    mig = make_random_mig(6, 45, seed=seed)
    out = inverter_pairs_pass(mig)
    for node in out.live_gates():
        count = sum(1 for s in out.fanins(node) if s > 1 and s & 1)
        assert count <= 1


class TestTransformUnits:
    def test_distributivity_fires_on_shared_pair(self):
        mig = Mig()
        x, y, u, v, z = (mig.add_pi(n) for n in "xyuvz")
        first = mig.add_maj(x, y, u)
        second = mig.add_maj(x, y, v)
        result = algebra.try_distributivity_rl(
            mig, first, second, z, fanout_of=lambda s: 1
        )
        assert result is not None
        ref = Mig()
        x, y, u, v, z = (ref.add_pi(n) for n in "xyuvz")
        ref.add_po(ref.add_maj(ref.add_maj(x, y, u), ref.add_maj(x, y, v), z))
        got = mig
        got.add_po(result)
        assert equivalent(ref, got)

    def test_distributivity_skips_shared_single(self):
        mig = Mig()
        x, y, u, v, z, w = (mig.add_pi(n) for n in "xyuvzw")
        first = mig.add_maj(x, y, u)
        second = mig.add_maj(x, w, v)  # only x shared
        assert (
            algebra.try_distributivity_rl(
                mig, first, second, z, fanout_of=lambda s: 1
            )
            is None
        )

    def test_psi_c_ignores_constant_operands(self):
        # <A B 1> with a constant-0 inside A must NOT be rewritten as a
        # "complement" of the constant-1 operand.
        mig = Mig()
        s, t, e = (mig.add_pi(n) for n in "ste")
        a = mig.add_and(s, t)
        b = mig.add_and(mig.add_pi("q"), e)
        before = mig.num_gates
        result = algebra.try_complementary_associativity(mig, a, b, 1)
        assert result is None
        assert mig.num_gates == before

    def test_inverter_propagation_counts_only_variables(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        from repro.mig.signal import complement

        # <~a ~b 1>: two variable complements -> rewritten
        assert algebra.propagate_inverters(
            mig, complement(a), complement(b), 1, handle_two=True
        ) is not None
        # <~a b 1>: one variable complement (const-1 ignored) -> kept
        assert algebra.propagate_inverters(
            mig, complement(a), b, 1, handle_two=True
        ) is None
