"""Tests for the Start-Gap runtime wear-levelling extension."""

import pytest

from repro.core.manager import PRESETS, compile_pipeline
from repro.plim.controller import PlimController
from repro.plim.memory import RramArray
from repro.plim.startgap import StartGapArray, run_with_start_gap
from repro.synth.arithmetic import build_adder


class TestAddressTranslation:
    def test_initial_identity_mapping(self):
        array = StartGapArray(8)
        for logical in range(8):
            assert array.physical_address(logical) == logical

    def test_out_of_range(self):
        array = StartGapArray(4)
        with pytest.raises(IndexError):
            array.physical_address(4)

    def test_gap_interval_validation(self):
        with pytest.raises(ValueError):
            StartGapArray(4, gap_interval=0)

    def test_mapping_is_bijective_through_rotations(self):
        array = StartGapArray(6, gap_interval=1)
        for step in range(50):
            mapped = {array.physical_address(l) for l in range(6)}
            assert len(mapped) == 6
            assert array.gap not in mapped
            array.write(step % 6, step & 1)

    def test_full_revolution_counted(self):
        n = 5
        array = StartGapArray(n, gap_interval=1)
        for i in range(n + 1):
            array.write(i % n, 1)
        assert array.revolutions == 1


class TestDataConsistency:
    def test_values_survive_rotation(self):
        array = StartGapArray(4, gap_interval=1)
        for logical in range(4):
            array.preload(logical, logical % 2)
        expected = {l: l % 2 for l in range(4)}
        # lots of writes, lots of gap movement
        for step in range(40):
            target = step % 4
            value = (step // 4) & 1
            array.write(target, value)
            expected[target] = value
            for logical in range(4):
                assert array.read(logical) == expected[logical], (step, logical)

    def test_controller_runs_identically_on_startgap(self):
        """Program outputs are mapping-invariant."""
        mig = build_adder(width=4)
        program = compile_pipeline(mig, PRESETS["min-write"]).program
        words = [(i * 29) & 1 for i in range(mig.num_pis)]
        plain = PlimController(RramArray(program.num_cells)).run(
            program, words
        )
        for interval in (1, 3, 17):
            sg = StartGapArray(program.num_cells, gap_interval=interval)
            got = PlimController(sg).run(program, words)
            assert got == plain, interval


class TestWearLevelling:
    def test_rotation_spreads_static_hotspot(self):
        """A single hot logical cell wears the whole physical array."""
        n = 8
        array = StartGapArray(n, gap_interval=4)
        for _ in range(800):
            array.write(0, 1)  # always the same logical address
        counts = array.write_counts()
        # no physical cell takes more than half the traffic
        assert max(counts) < 800 // 2
        # and every physical cell participated
        assert min(counts) > 0

    def test_no_rotation_concentrates(self):
        array = RramArray(8)
        for _ in range(800):
            array.write(0, 1)
        assert array.max_writes() == 800

    def test_run_with_start_gap_end_to_end(self):
        mig = build_adder(width=3)
        program = compile_pipeline(mig, PRESETS["naive"]).program
        words = [0] * mig.num_pis
        static_counts = program.write_counts()
        executions = 30
        array = run_with_start_gap(
            program, words, executions=executions, gap_interval=16
        )
        physical = array.write_counts()
        # rotation beats the static concentration: hottest physical cell
        # is cooler than executions * hottest static cell
        assert max(physical) < executions * max(static_counts)
        # total wear grows only by the gap-copy overhead
        base = executions * sum(static_counts)
        assert sum(physical) >= base
        assert sum(physical) <= base * 1.2


class TestArchitectureDefaults:
    """Start-Gap consumes rotation constants from the machine model."""

    def test_gap_interval_from_architecture(self):
        from repro.arch import Architecture, Geometry

        machine = Architecture(
            name="fast-rotation", geometry=Geometry(gap_interval=7)
        )
        array = StartGapArray(8, arch=machine)
        assert array.gap_interval == 7
        # explicit argument still wins over the machine default
        assert StartGapArray(8, gap_interval=3, arch=machine).gap_interval == 3
        # no arch, no argument: the historic default
        assert StartGapArray(8).gap_interval == 100

    def test_for_architecture_wear_out_budget(self):
        from repro.arch import Architecture, EnduranceModel

        machine = Architecture(
            name="fragile",
            endurance=EnduranceModel(cell_endurance=1000),
        )
        array = StartGapArray.for_architecture(machine, 8, wear_out=True)
        assert array.physical.endurance == 1000
        assert StartGapArray.for_architecture(machine, 8).physical.endurance is None


class TestWriteCapInteraction:
    """Compile-time retirement and runtime rotation compose: the capped
    program stays correct under rotation, and rotation keeps spreading
    the already-flattened write profile."""

    def test_capped_program_correct_under_rotation(self):
        from repro.core.manager import full_management

        mig = build_adder(width=3)
        program = compile_pipeline(mig, full_management(5)).program
        words = [(i * 37 + 11) & 0xFF for i in range(mig.num_pis)]
        plain = RramArray(program.num_cells)
        PlimController(plain).run(program, words, mask=0xFF)
        expected = [plain.read(c) for c in program.po_cells]

        rotated = StartGapArray(program.num_cells, gap_interval=4)
        controller = PlimController(rotated)
        for _ in range(10):
            outputs = controller.run(program, words, mask=0xFF)
        assert [rotated.read(c) for c in program.po_cells] == expected
        assert outputs == expected
        assert rotated.gap != program.num_cells  # rotation really moved

    def test_rotation_spreads_capped_profile_further(self):
        from repro.core.manager import full_management

        mig = build_adder(width=3)
        program = compile_pipeline(mig, full_management(4)).program
        counts = program.write_counts()
        assert max(counts) <= 4  # the compile-time cap held
        executions = 50
        array = run_with_start_gap(
            program, [0] * mig.num_pis, executions=executions,
            gap_interval=8,
        )
        # even the hottest physical cell stays within the static bound
        # (cap * executions) plus rotation's own copy traffic
        rotations = sum(array.write_counts()) - executions * sum(counts)
        assert rotations > 0
        assert max(array.write_counts()) <= 4 * executions + rotations


class TestPerBlockRotation:
    """Start-Gap on word-addressed machines rotates each line
    independently (the blocked-architecture ROADMAP lever)."""

    def _blocked(self):
        from repro.arch import get_architecture

        return get_architecture("blocked")

    def test_one_spare_per_line(self):
        arch = self._blocked()
        block = arch.geometry.block_size
        array = StartGapArray.for_architecture(arch, 20)
        lines = -(-20 // block)
        assert array.num_regions == lines
        assert array.physical.num_cells == 20 + lines
        # every line's gap starts at its own spare, behind its cells
        assert len(array.gaps()) == lines
        assert len(set(array.gaps())) == lines

    def test_crossbar_stays_single_region(self):
        from repro.arch import get_architecture

        array = StartGapArray.for_architecture(
            get_architecture("endurance"), 8
        )
        assert array.num_regions == 1
        assert array.physical.num_cells == 9  # one spare, as before
        assert array.gap == 8  # scalar gap still exposed

    def test_scalar_gap_refused_on_blocked_arrays(self):
        array = StartGapArray.for_architecture(self._blocked(), 20)
        with pytest.raises(AttributeError):
            array.gap

    def test_rotation_confined_to_the_written_line(self):
        arch = self._blocked()
        array = StartGapArray(20, gap_interval=4, arch=arch)
        before = array.gaps()
        for _ in range(25):  # > 6 rotations of line 0, none elsewhere
            array.write(2, 1)
        after = array.gaps()
        assert after[0] != before[0]
        assert after[1:] == before[1:]
        assert array.region_revolutions()[1:] == [0] * (array.num_regions - 1)

    def test_values_never_leave_their_line(self):
        arch = self._blocked()
        block = arch.geometry.block_size
        array = StartGapArray(16, gap_interval=1, arch=arch)
        for step in range(40):
            array.write(3, step & 1)
            array.write(11, step & 1)
            for logical in (3, 11):
                line = logical // block
                rotor_base = array.physical_address(logical)
                # the line's physical segment is [line*(block+1), +block+1)
                assert line * (block + 1) <= rotor_base < (line + 1) * (block + 1)

    def test_interval_comes_from_the_architecture(self):
        from repro.arch import Architecture, Geometry

        machine = Architecture(
            name="tight-lines",
            geometry=Geometry(block_size=4, gap_interval=3),
        )
        array = StartGapArray.for_architecture(machine, 8)
        start = array.gaps()[0]
        array.write(0, 1)
        array.write(1, 1)
        assert array.gaps()[0] == start  # interval not reached yet
        array.write(2, 1)  # third write into line 0 rotates it
        assert array.gaps()[0] != start
        assert array.gaps()[1] == array._rotors[1].base + 4

    def test_reads_stay_correct_across_line_rotations(self):
        arch = self._blocked()
        array = StartGapArray(20, gap_interval=1, arch=arch)
        values = {}
        for logical in range(20):
            array.preload(logical, logical & 1)
            values[logical] = logical & 1
        for step in range(60):
            logical = (step * 7) % 20
            values[logical] = (step >> 1) & 1
            array.write(logical, values[logical])
            for check in (0, 7, 13, 19):
                assert array.read(check) == values[check]

    def test_startgap_x_blocked_end_to_end(self):
        """A program compiled FOR the blocked machine runs correctly on
        a per-line rotating array built FROM the same machine."""
        arch = self._blocked()
        mig = build_adder(width=3)
        program = compile_pipeline(mig, PRESETS["ea-full"], arch=arch).program
        words = [(i * 29 + 5) & 0xFF for i in range(mig.num_pis)]
        plain = RramArray(program.num_cells)
        expected = PlimController(plain).run(program, words, mask=0xFF)

        array = run_with_start_gap(
            program, words, executions=8, gap_interval=4, arch=arch
        )
        assert array.num_regions == -(-program.num_cells // arch.geometry.block_size)
        outputs = PlimController(array).run(program, words, mask=0xFF)
        assert outputs == expected
        # rotation really happened in at least one line
        assert any(r > 0 or g != rot.base + rot.size
                   for r, g, rot in zip(array.region_revolutions(),
                                        array.gaps(), array._rotors))
