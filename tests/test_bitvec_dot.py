"""Tests for the low-level bitvec helpers and the DOT exporter."""

from hypothesis import given, settings, strategies as st

from repro.mig.bitvec import full_adder, ge_const, half_adder, popcount, popcount_threshold
from repro.mig.dot import to_dot, write_dot
from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.mig.simulate import simulate, truth_tables


class TestFullAdder:
    def test_exhaustive(self):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        s, cy = full_adder(mig, a, b, c)
        mig.add_po(s, "s")
        mig.add_po(cy, "c")
        ts, tc = truth_tables(mig)
        for m in range(8):
            total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1)
            assert (ts >> m) & 1 == total & 1
            assert (tc >> m) & 1 == total >> 1

    def test_carry_is_single_majority(self):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        before = mig.num_gates
        _s, _cy = full_adder(mig, a, b, c)
        assert mig.num_gates - before == 3  # carry + 2 sum nodes

    def test_half_adder_exhaustive(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        s, cy = half_adder(mig, a, b)
        mig.add_po(s)
        mig.add_po(cy)
        ts, tc = truth_tables(mig)
        assert ts == 0b0110
        assert tc == 0b1000


class TestPopcount:
    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_popcount_matches(self, value):
        mig = Mig()
        bits = [mig.add_pi() for _ in range(10)]
        for s in popcount(mig, bits):
            mig.add_po(s)
        outs = simulate(mig, [(value >> i) & 1 for i in range(10)])
        got = sum(b << i for i, b in enumerate(outs))
        assert got == bin(value).count("1")

    def test_empty_popcount(self):
        mig = Mig()
        assert popcount(mig, []) == []

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.integers(min_value=0, max_value=127),
        k=st.integers(min_value=-1, max_value=9),
    )
    def test_threshold(self, value, k):
        mig = Mig()
        bits = [mig.add_pi() for _ in range(7)]
        mig.add_po(popcount_threshold(mig, bits, k))
        (out,) = simulate(mig, [(value >> i) & 1 for i in range(7)])
        assert out == (1 if bin(value).count("1") >= k else 0)

    def test_ge_const_boundaries(self):
        mig = Mig()
        bits = [mig.add_pi() for _ in range(4)]
        assert ge_const(mig, bits, 0) == 1  # always true
        assert ge_const(mig, bits, 16) == 0  # unreachable


class TestDot:
    def test_dot_structure(self):
        mig = Mig("demo")
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.add_and(a, complement(b))
        mig.add_po(complement(f), "f")
        text = to_dot(mig)
        assert text.startswith("digraph mig {")
        assert 'label="a"' in text
        assert "style=dashed" in text  # complemented edges drawn dashed
        assert "invtriangle" in text  # the output marker
        assert text.rstrip().endswith("}")

    def test_dead_nodes_excluded(self):
        mig = Mig()
        a, b, c = (mig.add_pi() for _ in range(3))
        mig.add_maj(a, b, c)  # dead
        mig.add_po(mig.add_and(a, b))
        text = to_dot(mig)
        assert text.count('label="MAJ"') == 1

    def test_write_dot(self, tmp_path):
        mig = Mig("filetest")
        a = mig.add_pi("a")
        mig.add_po(a, "f")
        path = tmp_path / "g.dot"
        write_dot(mig, str(path), title="T")
        content = path.read_text()
        assert 'label="T"' in content
