"""Tests for the RRAM allocator policies (min/max write strategies)."""

import pytest

from repro.plim.allocator import MIN_WRITE_CAP, RramAllocator


class TestBasics:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            RramAllocator("best-fit")

    def test_low_cap_rejected(self):
        with pytest.raises(ValueError):
            RramAllocator("min_write", w_max=MIN_WRITE_CAP - 1)

    def test_new_cells_are_sequential(self):
        alloc = RramAllocator()
        assert [alloc.new_cell() for _ in range(3)] == [0, 1, 2]
        assert alloc.num_cells == 3

    def test_request_prefers_free_pool(self):
        alloc = RramAllocator()
        a = alloc.new_cell()
        alloc.release(a)
        assert alloc.request() == a
        assert alloc.num_cells == 1

    def test_request_allocates_when_pool_empty(self):
        alloc = RramAllocator()
        assert alloc.request() == 0
        assert alloc.request() == 1

    def test_double_release_rejected(self):
        alloc = RramAllocator()
        a = alloc.new_cell()
        alloc.release(a)
        with pytest.raises(ValueError):
            alloc.release(a)


class TestNaiveLifo:
    def test_lifo_order(self):
        alloc = RramAllocator("naive")
        cells = [alloc.new_cell() for _ in range(3)]
        for c in cells:
            alloc.release(c)
        assert alloc.request() == cells[-1]
        assert alloc.request() == cells[-2]


class TestMinWrite:
    def test_least_written_first(self):
        alloc = RramAllocator("min_write")
        a, b, c = (alloc.new_cell() for _ in range(3))
        for _ in range(5):
            alloc.record_write(a)
        for _ in range(2):
            alloc.record_write(b)
        alloc.record_write(c)
        for cell in (a, b, c):
            alloc.release(cell)
        assert alloc.request() == c  # 1 write
        assert alloc.request() == b  # 2 writes
        assert alloc.request() == a  # 5 writes

    def test_tie_breaks_by_address(self):
        alloc = RramAllocator("min_write")
        a, b = alloc.new_cell(), alloc.new_cell()
        alloc.release(b)
        alloc.release(a)
        assert alloc.request() == a

    def test_stale_heap_entries_skipped(self):
        alloc = RramAllocator("min_write")
        a = alloc.new_cell()
        alloc.release(a)
        got = alloc.request()
        assert got == a
        alloc.record_write(a)
        alloc.record_write(a)
        b = alloc.new_cell()
        alloc.release(b)
        alloc.release(a)  # two heap entries for a now (one stale)
        assert alloc.request() == b  # 0 writes beats 2
        assert alloc.request() == a


class TestMaxWriteCap:
    def test_capped_cells_retire_on_release(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        for _ in range(3):
            alloc.record_write(a)
        alloc.release(a)
        assert a in alloc.retired
        # the pool is empty: a fresh cell is allocated
        assert alloc.request() == 1

    def test_writable_respects_cap(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        assert alloc.writable(a)
        for _ in range(3):
            alloc.record_write(a)
        assert not alloc.writable(a)

    def test_headroom(self):
        alloc = RramAllocator("min_write", w_max=5)
        a = alloc.new_cell()
        alloc.record_write(a)
        assert alloc.headroom(a) == 4
        uncapped = RramAllocator("min_write")
        b = uncapped.new_cell()
        assert uncapped.headroom(b) is None

    def test_uncapped_never_retires(self):
        alloc = RramAllocator("naive")
        a = alloc.new_cell()
        for _ in range(100):
            alloc.record_write(a)
        alloc.release(a)
        assert not alloc.retired
        assert alloc.writable(a)
