"""Tests for the RRAM allocator policies (min/max write strategies)."""

import pytest

from repro.plim.allocator import MIN_WRITE_CAP, RramAllocator


class TestBasics:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            RramAllocator("best-fit")

    def test_low_cap_rejected(self):
        with pytest.raises(ValueError):
            RramAllocator("min_write", w_max=MIN_WRITE_CAP - 1)

    def test_new_cells_are_sequential(self):
        alloc = RramAllocator()
        assert [alloc.new_cell() for _ in range(3)] == [0, 1, 2]
        assert alloc.num_cells == 3

    def test_request_prefers_free_pool(self):
        alloc = RramAllocator()
        a = alloc.new_cell()
        alloc.release(a)
        assert alloc.request() == a
        assert alloc.num_cells == 1

    def test_request_allocates_when_pool_empty(self):
        alloc = RramAllocator()
        assert alloc.request() == 0
        assert alloc.request() == 1

    def test_double_release_rejected(self):
        alloc = RramAllocator()
        a = alloc.new_cell()
        alloc.release(a)
        with pytest.raises(ValueError):
            alloc.release(a)


class TestNaiveLifo:
    def test_lifo_order(self):
        alloc = RramAllocator("naive")
        cells = [alloc.new_cell() for _ in range(3)]
        for c in cells:
            alloc.release(c)
        assert alloc.request() == cells[-1]
        assert alloc.request() == cells[-2]


class TestMinWrite:
    def test_least_written_first(self):
        alloc = RramAllocator("min_write")
        a, b, c = (alloc.new_cell() for _ in range(3))
        for _ in range(5):
            alloc.record_write(a)
        for _ in range(2):
            alloc.record_write(b)
        alloc.record_write(c)
        for cell in (a, b, c):
            alloc.release(cell)
        assert alloc.request() == c  # 1 write
        assert alloc.request() == b  # 2 writes
        assert alloc.request() == a  # 5 writes

    def test_tie_breaks_by_address(self):
        alloc = RramAllocator("min_write")
        a, b = alloc.new_cell(), alloc.new_cell()
        alloc.release(b)
        alloc.release(a)
        assert alloc.request() == a

    def test_stale_heap_entries_skipped(self):
        alloc = RramAllocator("min_write")
        a = alloc.new_cell()
        alloc.release(a)
        got = alloc.request()
        assert got == a
        alloc.record_write(a)
        alloc.record_write(a)
        b = alloc.new_cell()
        alloc.release(b)
        alloc.release(a)  # two heap entries for a now (one stale)
        assert alloc.request() == b  # 0 writes beats 2
        assert alloc.request() == a


class TestMaxWriteCap:
    def test_capped_cells_retire_on_release(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        for _ in range(3):
            alloc.record_write(a)
        alloc.release(a)
        assert a in alloc.retired
        # the pool is empty: a fresh cell is allocated
        assert alloc.request() == 1

    def test_writable_respects_cap(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        assert alloc.writable(a)
        for _ in range(3):
            alloc.record_write(a)
        assert not alloc.writable(a)

    def test_headroom(self):
        alloc = RramAllocator("min_write", w_max=5)
        a = alloc.new_cell()
        alloc.record_write(a)
        assert alloc.headroom(a) == 4
        uncapped = RramAllocator("min_write")
        b = uncapped.new_cell()
        assert uncapped.headroom(b) is None

    def test_uncapped_never_retires(self):
        alloc = RramAllocator("naive")
        a = alloc.new_cell()
        for _ in range(100):
            alloc.record_write(a)
        alloc.release(a)
        assert not alloc.retired
        assert alloc.writable(a)


class TestWmaxRetirementBoundaries:
    """Exact-cap edges of the maximum write count strategy."""

    def test_device_one_below_cap_is_still_a_destination(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        for _ in range(2):
            alloc.record_write(a)
        assert alloc.writable(a)  # 2 < 3: one RM3 still fits
        assert alloc.headroom(a) == 1
        alloc.release(a)
        assert a not in alloc.retired  # below cap: pooled, not retired
        assert alloc.request(headroom=1) == a

    def test_device_at_exact_cap_refused_everywhere(self):
        alloc = RramAllocator("min_write", w_max=3)
        a = alloc.new_cell()
        for _ in range(3):
            alloc.record_write(a)
        assert not alloc.writable(a)
        assert alloc.headroom(a) == 0
        alloc.release(a)
        assert a in alloc.retired
        # never served again, for any headroom
        assert alloc.request(headroom=1) != a

    def test_pooled_device_reaching_cap_is_skipped_not_lost(self):
        """A device released *below* the cap can still sit in the pool
        when later requests need more headroom than it has left — it
        must be skipped for those and kept for smaller asks."""
        alloc = RramAllocator("min_write", w_max=4)
        a = alloc.new_cell()
        for _ in range(3):
            alloc.record_write(a)
        alloc.release(a)  # one write of headroom left
        fresh = alloc.request(headroom=2)  # copy destination: won't fit
        assert fresh != a
        assert alloc.request(headroom=1) == a  # still available

    def test_retirement_mid_translation_bounds_every_cell(self):
        """Compiled under a cap, no cell of the emitted program may
        exceed it — retirement must kick in mid-translation, exactly
        when a destination hits the cap, for both allocator shapes."""
        from repro.analysis.scenarios import fig1_chain
        from repro.core.manager import compile_pipeline, full_management

        mig = fig1_chain(12)
        for arch in ("endurance", "blocked"):
            result = compile_pipeline(mig, full_management(4), arch=arch)
            counts = result.program.write_counts()
            assert max(counts) <= 4
            # the cap forces extra devices vs the uncapped run
            uncapped = compile_pipeline(
                mig, full_management(100), arch=arch
            )
            assert result.program.num_cells >= uncapped.program.num_cells
