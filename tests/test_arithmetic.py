"""Benchmark-generator tests: circuits vs bit-exact models vs math specs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mig.simulate import simulate
from repro.synth import arithmetic as A


def run_words(mig, values_bits):
    """Evaluate a benchmark MIG on a flat list of input bit values."""
    return simulate(mig, values_bits)


def unpack(value, width):
    return [(value >> i) & 1 for i in range(width)]


def pack(bits):
    return sum(b << i for i, b in enumerate(bits))


W = 6
vals = st.integers(min_value=0, max_value=(1 << W) - 1)


class TestAdder:
    @pytest.fixture(scope="class")
    def mig(self):
        return A.build_adder(width=W)

    @settings(max_examples=40, deadline=None)
    @given(a=vals, b=vals)
    def test_matches_model(self, mig, a, b):
        outs = run_words(mig, unpack(a, W) + unpack(b, W))
        assert pack(outs) == A.adder_model(a, b, W)

    def test_interface(self, mig):
        assert mig.num_pis == 2 * W
        assert mig.num_pos == W + 1

    def test_elaborated_and_native_equivalent(self):
        from repro.mig.simulate import equivalent

        assert equivalent(
            A.build_adder(width=4, elaborated=True),
            A.build_adder(width=4, elaborated=False),
        )

    def test_elaborated_is_larger(self):
        el = A.build_adder(width=8, elaborated=True)
        opt = A.build_adder(width=8, elaborated=False)
        assert el.num_live_gates() > opt.num_live_gates()


class TestBar:
    @pytest.fixture(scope="class")
    def mig(self):
        return A.build_bar(width=8, shift_bits=3)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.integers(min_value=0, max_value=255),
        amt=st.integers(min_value=0, max_value=7),
    )
    def test_matches_model(self, mig, data, amt):
        outs = run_words(mig, unpack(data, 8) + unpack(amt, 3))
        assert pack(outs) == A.bar_model(data, amt, 8)

    def test_interface(self, mig):
        assert mig.num_pis == 11
        assert mig.num_pos == 8


class TestDiv:
    @pytest.fixture(scope="class")
    def mig(self):
        return A.build_div(width=W)

    @settings(max_examples=50, deadline=None)
    @given(n=vals, d=vals)
    def test_matches_model(self, mig, n, d):
        outs = run_words(mig, unpack(n, W) + unpack(d, W))
        q = pack(outs[:W])
        r = pack(outs[W:])
        mq, mr = A.div_model(n, d, W)
        assert (q, r) == (mq, mr)

    @settings(max_examples=50, deadline=None)
    @given(n=vals, d=vals.filter(lambda v: v != 0))
    def test_model_matches_divmod(self, n, d):
        assert A.div_model(n, d, W) == divmod(n, d)

    def test_divide_by_zero_defined(self, mig):
        outs = run_words(mig, unpack(5, W) + unpack(0, W))
        q = pack(outs[:W])
        assert q == (1 << W) - 1  # all-ones quotient

    def test_interface(self, mig):
        assert mig.num_pis == 2 * W
        assert mig.num_pos == 2 * W


class TestMax:
    @pytest.fixture(scope="class")
    def mig(self):
        return A.build_max(width=W)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(vals, min_size=4, max_size=4))
    def test_matches_model(self, mig, values):
        flat = []
        for v in values:
            flat.extend(unpack(v, W))
        outs = run_words(mig, flat)
        best = pack(outs[:W])
        idx = pack(outs[W:])
        m_best, m_idx = A.max_model(values)
        assert best == m_best
        assert idx == m_idx

    def test_interface(self, mig):
        assert mig.num_pis == 4 * W
        assert mig.num_pos == W + 2

    def test_non_four_operands_rejected(self):
        with pytest.raises(ValueError):
            A.build_max(width=4, operands=3)


class TestMultiplierSquare:
    @settings(max_examples=30, deadline=None)
    @given(a=vals, b=vals)
    def test_multiplier(self, a, b):
        mig = TestMultiplierSquare._mult()
        outs = run_words(mig, unpack(a, W) + unpack(b, W))
        assert pack(outs) == A.multiplier_model(a, b)

    @staticmethod
    def _mult(cache={}):
        if "m" not in cache:
            cache["m"] = A.build_multiplier(width=W)
        return cache["m"]

    @settings(max_examples=30, deadline=None)
    @given(a=vals)
    def test_square(self, a):
        mig = TestMultiplierSquare._sq()
        outs = run_words(mig, unpack(a, W))
        assert pack(outs) == A.square_model(a)

    @staticmethod
    def _sq(cache={}):
        if "s" not in cache:
            cache["s"] = A.build_square(width=W)
        return cache["s"]


class TestSqrt:
    @pytest.fixture(scope="class")
    def mig(self):
        return A.build_sqrt(width=8)

    @settings(max_examples=60, deadline=None)
    @given(x=st.integers(min_value=0, max_value=255))
    def test_matches_isqrt(self, mig, x):
        outs = run_words(mig, unpack(x, 8))
        assert pack(outs) == math.isqrt(x)

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            A.build_sqrt(width=7)

    def test_interface(self, mig):
        assert mig.num_pis == 8
        assert mig.num_pos == 4

    def test_exhaustive_small(self):
        mig = A.build_sqrt(width=6)
        for x in range(64):
            outs = run_words(mig, unpack(x, 6))
            assert pack(outs) == math.isqrt(x), x
