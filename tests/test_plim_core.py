"""Tests for the PLiM ISA, memory array, and controller."""

import pytest

from repro.plim.controller import (
    CYCLES_PER_INSTRUCTION,
    ExecutionTrace,
    PlimController,
    execute,
)
from repro.plim.isa import (
    OP_CONST0,
    OP_CONST1,
    Program,
    const_operand,
    format_operand,
    operand_const_value,
    operand_is_const,
)
from repro.plim.memory import (
    EnduranceExhaustedError,
    RramArray,
    estimate_lifetime,
)


class TestOperands:
    def test_const_encoding(self):
        assert const_operand(0) == OP_CONST0
        assert const_operand(1) == OP_CONST1
        assert operand_is_const(OP_CONST0)
        assert not operand_is_const(0)
        assert operand_const_value(OP_CONST1) == 1
        with pytest.raises(ValueError):
            operand_const_value(3)

    def test_format(self):
        assert format_operand(OP_CONST0) == "0"
        assert format_operand(OP_CONST1) == "1"
        assert format_operand(7) == "@7"


class TestProgram:
    def test_write_counts(self):
        prog = Program(
            instructions=[(OP_CONST1, OP_CONST0, 0), (0, OP_CONST0, 1),
                          (OP_CONST0, OP_CONST1, 1)],
            num_cells=3,
        )
        assert prog.write_counts() == [1, 2, 0]

    def test_read_counts(self):
        prog = Program(
            instructions=[(0, 1, 2)],
            num_cells=3,
        )
        # p reads 0, q reads 1, z reads its own old value
        assert prog.read_counts() == [1, 1, 1]

    def test_validate_catches_bad_destination(self):
        prog = Program(instructions=[(OP_CONST0, OP_CONST1, 5)], num_cells=2)
        with pytest.raises(ValueError):
            prog.validate()

    def test_validate_catches_bad_operand(self):
        prog = Program(instructions=[(9, OP_CONST1, 0)], num_cells=2)
        with pytest.raises(ValueError):
            prog.validate()

    def test_disassemble_truncates(self):
        prog = Program(
            instructions=[(OP_CONST0, OP_CONST1, 0)] * 10, num_cells=1
        )
        text = prog.disassemble(limit=3)
        assert "7 more instructions" in text
        assert "RM3(0, 1, @0)" in text

    def test_value_lifetimes_simple(self):
        # write cell0 at 0, read it at 2, overwrite at 3
        prog = Program(
            instructions=[
                (OP_CONST1, OP_CONST0, 0),
                (OP_CONST1, OP_CONST0, 1),
                (0, OP_CONST0, 2),
                (OP_CONST0, OP_CONST1, 0),
            ],
            num_cells=3,
            po_cells=[2],
        )
        spans = prog.value_lifetimes()
        assert (0, 3) in spans[0]
        # cell 2 is a PO: its span runs to program end
        assert spans[2][-1][1] == 4

    def test_max_blocked_span(self):
        prog = Program(
            instructions=[
                (OP_CONST1, OP_CONST0, 0),
                (OP_CONST1, OP_CONST0, 1),
                (OP_CONST1, OP_CONST0, 1),
                (0, OP_CONST0, 1),
            ],
            num_cells=2,
        )
        assert prog.max_blocked_span() == 3  # cell0: written@0, read@3


class TestRramArray:
    def test_write_counting(self):
        array = RramArray(2)
        array.write(0, 1)
        array.write(0, 0)
        assert array.writes == [2, 0]
        assert array.max_writes() == 2
        assert array.total_writes() == 2

    def test_preload_not_counted(self):
        array = RramArray(1)
        array.preload(0, 1)
        assert array.writes == [0]
        assert array.read(0) == 1

    def test_endurance_exhaustion(self):
        array = RramArray(1, endurance=2)
        array.write(0, 1)
        array.write(0, 0)
        with pytest.raises(EnduranceExhaustedError) as exc:
            array.write(0, 1)
        assert exc.value.cell == 0
        assert array.remaining_endurance() == -1

    def test_reset_wear(self):
        array = RramArray(2, endurance=1)
        array.write(1, 1)
        array.reset_wear()
        array.write(1, 0)  # fine again
        assert array.writes == [0, 1]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RramArray(-1)


class TestLifetime:
    def test_estimate_basic(self):
        est = estimate_lifetime([1, 5, 2], endurance=100)
        assert est.executions == 20
        assert est.first_failing_cell == 1
        assert est.writes_per_execution == 5

    def test_estimate_zero_writes(self):
        est = estimate_lifetime([0, 0], endurance=10)
        assert est.executions == 10
        assert est.first_failing_cell == -1

    def test_balancing_multiplies_lifetime(self):
        skewed = estimate_lifetime([100, 1, 1], endurance=10**6)
        balanced = estimate_lifetime([34, 34, 34], endurance=10**6)
        assert balanced.executions > 2.9 * skewed.executions


class TestController:
    def test_rm3_semantics_exhaustive(self):
        """Z <- MAJ(P, ~Q, Z) over all operand value combinations."""
        for p in range(2):
            for q in range(2):
                for z in range(2):
                    array = RramArray(3)
                    array.preload(0, p)
                    array.preload(1, q)
                    array.preload(2, z)
                    prog = Program(
                        instructions=[(0, 1, 2)], num_cells=3, po_cells=[2]
                    )
                    out = PlimController(array).run(prog)
                    nq = 1 - q
                    expected = (p & nq) | (p & z) | (nq & z)
                    assert out == [expected], (p, q, z)

    def test_const_write_idioms(self):
        array = RramArray(1)
        array.preload(0, 1)
        prog = Program(
            instructions=[(OP_CONST0, OP_CONST1, 0)], num_cells=1,
            po_cells=[0],
        )
        assert PlimController(array).run(prog) == [0]
        prog.instructions = [(OP_CONST1, OP_CONST0, 0)]
        assert PlimController(array).run(prog) == [1]

    def test_cycle_accounting(self):
        array = RramArray(1)
        prog = Program(
            instructions=[(OP_CONST1, OP_CONST0, 0)] * 5, num_cells=1
        )
        ctrl = PlimController(array)
        ctrl.run(prog)
        assert ctrl.cycles == 5 * CYCLES_PER_INSTRUCTION
        assert ctrl.instructions_executed == 5

    def test_trace(self):
        array = RramArray(1)
        prog = Program(instructions=[(OP_CONST1, OP_CONST0, 0)], num_cells=1)
        trace = ExecutionTrace()
        PlimController(array).run(prog, trace=trace)
        assert len(trace.records) == 1
        assert "RM3" in trace.records[0]

    def test_array_too_small(self):
        prog = Program(instructions=[], num_cells=5)
        with pytest.raises(ValueError):
            PlimController(RramArray(2)).run(prog)

    def test_input_arity_checked(self):
        prog = Program(instructions=[], num_cells=1, pi_cells=[0])
        with pytest.raises(ValueError):
            PlimController(RramArray(1)).run(prog, [])

    def test_execute_wrapper(self):
        prog = Program(
            instructions=[(OP_CONST1, OP_CONST0, 0)], num_cells=1,
            po_cells=[0],
        )
        assert execute(prog) == [1]

    def test_endurance_stops_execution(self):
        prog = Program(
            instructions=[(OP_CONST1, OP_CONST0, 0)] * 4, num_cells=1
        )
        array = RramArray(1, endurance=3)
        with pytest.raises(EnduranceExhaustedError):
            PlimController(array).run(prog)
