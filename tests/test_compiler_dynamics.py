"""Deeper compiler behaviour: scheduling dynamics and program invariants.

Complements ``test_compiler.py``'s cost-model cases with properties of
whole programs: dataflow sanity (no cell read before it holds a defined
value), release correctness (a freed device is never read again before
being rewritten), selection-order effects, and determinism.
"""

from hypothesis import given, settings, strategies as st

from repro.core.manager import PRESETS, compile_pipeline
from repro.core.selection import make_selection
from repro.mig.graph import Mig
from repro.mig.signal import complement
from repro.plim.compiler import PlimCompiler
from repro.plim.verify import verify_program
from repro.synth.arithmetic import build_adder
from .conftest import make_random_mig


def dataflow_check(program):
    """Every read cell must have been written or preloaded before."""
    defined = set(program.pi_cells)
    for idx, (p, q, z) in enumerate(program.instructions):
        for op in (p, q):
            if op >= 0:
                assert op in defined, (
                    f"instruction {idx} reads undefined cell {op}"
                )
        defined.add(z)
    for cell in program.po_cells:
        assert cell in defined, f"output cell {cell} never defined"


class TestDataflow:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_no_undefined_reads(self, seed):
        mig = make_random_mig(6, 45, seed=seed)
        for config in PRESETS.values():
            result = compile_pipeline(mig, config)
            dataflow_check(result.program)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_every_value_written_is_used_or_output(self, seed):
        """No dead stores: every written cell value is read later,
        overwritten as an accumulating destination, or is an output."""
        mig = make_random_mig(6, 40, seed=seed)
        program = PlimCompiler(allocation="min_write").compile(mig)
        last_writer = {}
        used = set()
        for idx, (p, q, z) in enumerate(program.instructions):
            for op in (p, q):
                if op >= 0 and op in last_writer:
                    used.add(last_writer[op])
            # RM3 reads Z too (it participates in the majority)
            if z in last_writer:
                used.add(last_writer[z])
            last_writer[z] = idx
        for cell in program.po_cells:
            if cell in last_writer:
                used.add(last_writer[cell])
        dead = [
            idx
            for idx, (_, _, z) in enumerate(program.instructions)
            if idx not in used
        ]
        assert not dead, f"dead stores at {dead[:5]}"


class TestDeterminism:
    def test_identical_runs_identical_programs(self):
        mig = make_random_mig(6, 50, seed=77)
        for config in PRESETS.values():
            a = compile_pipeline(mig, config).program
            b = compile_pipeline(mig, config).program
            assert a.instructions == b.instructions
            assert a.po_cells == b.po_cells


class TestSelectionDynamics:
    def test_dac16_releases_earlier_than_topo(self):
        """The releasing-priority order frees devices sooner, so its peak
        simultaneous live-cell count is no larger than topo's."""

        def peak_live(program):
            live = set(program.pi_cells)
            peak = len(live)
            for _, _, z in program.instructions:
                live.add(z)
                peak = max(peak, len(live))
            return peak

        mig = make_random_mig(8, 80, seed=5)
        topo = PlimCompiler(selection=None).compile(mig)
        dac16 = PlimCompiler(selection=make_selection("dac16")).compile(mig)
        assert dac16.num_rrams <= topo.num_rrams

    def test_endurance_selection_defers_blocked_producer(self):
        """On a Fig. 2 structure the blocked producer is compiled later
        under Algorithm 3 than under topological order."""
        mig = Mig()
        x = [mig.add_pi(f"x{i}") for i in range(6)]
        blocked = mig.add_maj(x[0], x[1], complement(x[2]))  # node id small
        rail = mig.add_maj(x[1], x[2], x[3])
        rail = mig.add_maj(rail, x[4], complement(x[5]))
        rail = mig.add_maj(rail, x[2], complement(x[3]))
        root = mig.add_maj(rail, blocked, x[0])
        mig.add_po(root, "g")

        topo = PlimCompiler(selection=None).compile(mig)
        ea = PlimCompiler(selection=make_selection("endurance")).compile(mig)
        verify_program(topo, mig)
        verify_program(ea, mig)

        # x0 (cell 0) feeds only the blocked producer and the root, so
        # its first read marks when the blocked producer is computed.
        def first_read_of(program, cell):
            for idx, (p, q, _z) in enumerate(program.instructions):
                if cell in (p, q):
                    return idx
            return len(program.instructions)

        # Relative position: Algorithm 3 schedules the blocked producer
        # later in its program than topological order does in its own.
        topo_pos = first_read_of(topo, 0) / max(1, len(topo.instructions))
        ea_pos = first_read_of(ea, 0) / max(1, len(ea.instructions))
        assert ea_pos > topo_pos


class TestProgramShape:
    def test_instruction_lower_bound(self):
        """#I >= number of live gates (each needs at least one RM3)."""
        for seed in (1, 2, 3):
            mig = make_random_mig(6, 40, seed=seed)
            program = PlimCompiler().compile(mig)
            assert program.num_instructions >= mig.num_live_gates()

    def test_rram_lower_bound(self):
        """#R >= PIs + POs-ish: inputs occupy cells; outputs need homes."""
        mig = build_adder(width=5)
        program = PlimCompiler().compile(mig)
        assert program.num_rrams >= mig.num_pis

    def test_write_counts_match_array_simulation(self):
        """Static write counts equal dynamic array wear after one run."""
        from repro.plim.controller import PlimController
        from repro.plim.memory import RramArray

        mig = make_random_mig(5, 30, seed=12)
        program = PlimCompiler(allocation="min_write").compile(mig)
        array = RramArray(program.num_cells)
        PlimController(array).run(program, [0] * mig.num_pis)
        assert array.writes == program.write_counts()

    def test_pi_cells_are_first(self):
        mig = build_adder(width=3)
        program = PlimCompiler().compile(mig)
        assert program.pi_cells == list(range(mig.num_pis))
