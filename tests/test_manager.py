"""Tests for configurations, presets, and the managed pipeline."""

import pytest

from repro.core.manager import (
    EnduranceConfig,
    PRESETS,
    compile_pipeline,
    full_management,
)
from repro.core.policies import (
    AllocationPolicy,
    MIN_WRITE_ALLOCATION,
    NAIVE_ALLOCATION,
    capped_allocation,
)
from repro.core.selection import SELECTIONS, make_selection
from repro.plim.verify import verify_program
from repro.synth.arithmetic import build_adder
from .conftest import make_random_mig


class TestPolicies:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AllocationPolicy("greedy")
        with pytest.raises(ValueError):
            AllocationPolicy("min_write", w_max=2)

    def test_labels(self):
        assert NAIVE_ALLOCATION.label == "naive"
        assert capped_allocation(10).label == "min_write, w_max=10"
        assert MIN_WRITE_ALLOCATION.strategy == "min_write"


class TestSelections:
    def test_registry_contents(self):
        assert {"topo", "dac16", "endurance"} <= set(SELECTIONS)

    def test_make_selection_unknown(self):
        with pytest.raises(ValueError):
            make_selection("alphabetical")

    def test_key_orderings(self):
        class FakeState:
            fanout_level_index = [0, 5, 2]

            def releasing_count(self, node):
                return {1: 3, 2: 1}.get(node, 0)

        state = FakeState()
        dac16 = make_selection("dac16")
        ea = make_selection("endurance")
        # dac16 prefers max releasing (node 1)
        assert dac16.key(state, 1) < dac16.key(state, 2)
        # endurance prefers min fanout level (node 2)
        assert ea.key(state, 2) < ea.key(state, 1)


class TestPresets:
    def test_table1_columns_exist(self):
        for name in ("naive", "dac16", "min-write", "ea-rewrite", "ea-full"):
            assert name in PRESETS

    def test_preset_composition_matches_paper(self):
        assert PRESETS["naive"].rewriting == "none"
        assert PRESETS["naive"].selection == "topo"
        assert PRESETS["dac16"].rewriting == "dac16"
        assert PRESETS["min-write"].allocation.strategy == "min_write"
        assert PRESETS["ea-rewrite"].rewriting == "endurance"
        assert PRESETS["ea-rewrite"].selection == "dac16"
        assert PRESETS["ea-full"].selection == "endurance"

    def test_effort_defaults_to_paper_value(self):
        assert all(cfg.effort == 5 for cfg in PRESETS.values())

    def test_full_management(self):
        cfg = full_management(20)
        assert cfg.allocation.w_max == 20
        assert cfg.allocation.strategy == "min_write"
        assert cfg.rewriting == "endurance"
        assert cfg.selection == "endurance"
        assert "wmax20" in cfg.name

    def test_with_cap_none(self):
        cfg = PRESETS["ea-full"].with_cap(None)
        assert cfg.allocation.w_max is None
        assert cfg.name == "ea-full"


class TestPipeline:
    def test_compile_all_presets_verified(self):
        mig = build_adder(width=4)
        for cfg in PRESETS.values():
            result = compile_pipeline(mig, cfg)
            verify_program(result.program, mig)
            assert result.num_instructions == result.program.num_instructions
            assert result.num_rrams == result.program.num_rrams
            assert result.stats.num_devices == result.num_rrams

    def test_rewriting_recorded_in_result(self):
        mig = build_adder(width=6)  # elaborated: rewriting shrinks it
        result = compile_pipeline(mig, PRESETS["ea-full"])
        assert result.mig_gates_before > result.mig_gates_after

    def test_custom_effort(self):
        mig = make_random_mig(5, 30, seed=4)
        cfg = EnduranceConfig(
            name="quick", rewriting="endurance", selection="endurance",
            effort=1,
        )
        result = compile_pipeline(mig, cfg)
        verify_program(result.program, mig)

    def test_capped_pipeline_respects_cap(self):
        mig = build_adder(width=6)
        result = compile_pipeline(mig, full_management(10))
        verify_program(result.program, mig)
        assert result.stats.max_writes <= 10

    def test_naive_uses_no_rewriting(self):
        mig = build_adder(width=6)
        result = compile_pipeline(mig, PRESETS["naive"])
        assert result.mig_gates_before == result.mig_gates_after
