"""Tests for the machine-model layer (repro.arch) and its threading.

Covers the registry (resolution precedence flag > env > default), the
model's capability checks, the word-addressed blocked allocator, and —
most importantly — the parity guarantees: the ``endurance`` and
``dac16`` architectures reproduce the pre-architecture compiler's
programs, write-count distributions, and rendered table artefacts
exactly for every configuration they support.
"""

import pickle

import pytest

from repro.arch import (
    ARCH_ENV_VAR,
    Architecture,
    ArchitectureError,
    CostModel,
    DEFAULT_ARCHITECTURE,
    EnduranceModel,
    Geometry,
    available_architectures,
    get_architecture,
    register_architecture,
    resolve_architecture,
)
from repro.analysis.report import render_architecture_sweep, render_table1
from repro.analysis.runner import run_matrix
from repro.analysis.scenarios import architecture_sweep, fig2_mig
from repro.core.manager import PRESETS, compile_pipeline, full_management
from repro.flow import Flow, Session
from repro.plim.allocator import CapacityExceededError
from repro.plim.blocked import BlockedAllocator
from repro.synth.registry import build_benchmark


class TestRegistry:
    def test_builtins_registered(self):
        names = available_architectures()
        for name in ("dac16", "endurance", "blocked"):
            assert name in names

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            get_architecture("nonesuch")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_architecture(Architecture(name="endurance"))

    def test_overwrite_allowed_explicitly(self):
        original = get_architecture("endurance")
        try:
            replacement = Architecture(name="endurance", description="x")
            assert register_architecture(
                replacement, overwrite=True
            ) is replacement
            assert get_architecture("endurance") is replacement
        finally:
            register_architecture(original, overwrite=True)

    def test_architecture_objects_pass_through(self):
        custom = Architecture(name="unregistered")
        assert resolve_architecture(custom) is custom


class TestResolutionPrecedence:
    """flag > environment > default, uniform with the other knobs."""

    def test_default_when_nothing_selected(self, monkeypatch):
        monkeypatch.delenv(ARCH_ENV_VAR, raising=False)
        assert resolve_architecture(None).name == DEFAULT_ARCHITECTURE

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(ARCH_ENV_VAR, "blocked")
        assert resolve_architecture(None).name == "blocked"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ARCH_ENV_VAR, "blocked")
        assert resolve_architecture("dac16").name == "dac16"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(ARCH_ENV_VAR, "nonesuch")
        with pytest.raises(ValueError, match="unknown architecture"):
            resolve_architecture(None)

    def test_session_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ARCH_ENV_VAR, "blocked")
        assert Session(arch="dac16").architecture.name == "dac16"

    def test_session_env_resolution(self, monkeypatch):
        monkeypatch.setenv(ARCH_ENV_VAR, "blocked")
        assert Session().architecture.name == "blocked"
        assert Session.from_env().architecture.name == "blocked"
        monkeypatch.delenv(ARCH_ENV_VAR)
        assert Session().architecture.name == DEFAULT_ARCHITECTURE

    def test_session_from_args_flag_beats_env(self, monkeypatch):
        import argparse

        monkeypatch.setenv(ARCH_ENV_VAR, "blocked")
        session = Session.from_args(argparse.Namespace(arch="dac16"))
        assert session.architecture.name == "dac16"
        session = Session.from_args(argparse.Namespace())
        assert session.architecture.name == "blocked"

    def test_session_rejects_unknown_arch_eagerly(self):
        with pytest.raises(ValueError, match="unknown architecture"):
            Session(arch="nonesuch")

    def test_spec_round_trip_carries_arch(self):
        spec = pickle.loads(pickle.dumps(Session(arch="blocked").spec()))
        assert spec.arch == "blocked"
        assert Session.from_spec(spec).architecture.name == "blocked"
        # no explicit arch -> spec defers to the worker's ambient env
        assert Session().spec().arch is None


class TestCapabilities:
    def test_dac16_refuses_min_write(self):
        dac16 = get_architecture("dac16")
        with pytest.raises(ArchitectureError, match="wear counters"):
            dac16.validate_allocation("min_write", None)
        assert not dac16.supports_config(PRESETS["min-write"])
        assert dac16.supports_config(PRESETS["naive"])
        assert dac16.supports_config(PRESETS["dac16"])

    def test_retirement_needs_support(self):
        oblivious = Architecture(
            name="x",
            endurance=EnduranceModel(
                wear_tracking=True, supports_retirement=False
            ),
        )
        with pytest.raises(ArchitectureError, match="retire"):
            oblivious.validate_allocation("naive", 10)

    def test_compile_pipeline_fails_fast(self):
        mig = fig2_mig()
        with pytest.raises(ArchitectureError):
            compile_pipeline(mig, PRESETS["ea-full"], arch="dac16")

    def test_capacity_is_enforced(self):
        tight = Architecture(
            name="tiny-array", geometry=Geometry(capacity=4)
        )
        mig = build_benchmark("dec", "tiny")
        with pytest.raises(CapacityExceededError):
            compile_pipeline(mig, PRESETS["naive"], arch=tight)

    def test_geometry_provisioning_rounds_up(self):
        geometry = Geometry(block_size=8)
        assert geometry.provisioned(0) == 0
        assert geometry.provisioned(1) == 8
        assert geometry.provisioned(8) == 8
        assert geometry.provisioned(9) == 16
        assert Geometry().provisioned(13) == 13  # crossbar: exact

    def test_allocator_factory_matches_geometry(self):
        from repro.plim.allocator import RramAllocator

        assert isinstance(
            get_architecture("endurance").make_allocator("naive", None),
            RramAllocator,
        )
        assert isinstance(
            get_architecture("blocked").make_allocator("min_write", 10),
            BlockedAllocator,
        )

    def test_cost_model_changes_role_choice(self):
        """A machine with free copies prefers copy destinations, so the
        cost table demonstrably steers translation."""
        free_copy = Architecture(
            name="free-copy",
            cost=CostModel(z_copy_instructions=0, z_request_cells=0),
        )
        mig = build_benchmark("dec", "tiny")
        default = compile_pipeline(mig, PRESETS["naive"])
        skewed = compile_pipeline(mig, PRESETS["naive"], arch=free_copy)
        assert (
            skewed.program.instructions != default.program.instructions
        )


class TestBlockedAllocator:
    def test_provisions_whole_lines(self):
        alloc = BlockedAllocator(4)
        assert alloc.num_cells == 0
        for _ in range(5):
            alloc.new_cell()
        assert alloc.num_blocks == 2
        assert alloc.num_cells == 8

    def test_naive_prefers_open_line(self):
        alloc = BlockedAllocator(2)
        cells = [alloc.new_cell() for _ in range(4)]  # lines {0,1}, {2,3}
        alloc.release(cells[0])  # line 0 released first
        alloc.release(cells[2])  # line 1 is now the open line
        assert alloc.request() == cells[2]
        assert alloc.request() == cells[0]

    def test_min_write_prefers_least_worn_line(self):
        alloc = BlockedAllocator(2, strategy="min_write")
        cells = [alloc.new_cell() for _ in range(4)]
        for _ in range(5):
            alloc.record_write(cells[0])  # line 0 is hot (its worst cell)
        alloc.record_write(cells[3])
        alloc.release(cells[1])  # cold cell, hot line
        alloc.release(cells[2])  # cold cell, cold line
        assert alloc.request() == cells[2]
        assert alloc.request() == cells[1]

    def test_retirement_matches_crossbar_semantics(self):
        alloc = BlockedAllocator(4, strategy="min_write", w_max=3)
        cell = alloc.new_cell()
        for _ in range(3):
            alloc.record_write(cell)
        alloc.release(cell)
        assert cell in alloc.retired
        assert alloc.request() != cell

    def test_double_release_rejected(self):
        alloc = BlockedAllocator(4)
        cell = alloc.new_cell()
        alloc.release(cell)
        with pytest.raises(ValueError, match="double release"):
            alloc.release(cell)

    def test_request_respects_headroom(self):
        alloc = BlockedAllocator(4, w_max=5)
        cell = alloc.new_cell()
        for _ in range(4):
            alloc.record_write(cell)  # one write of headroom left
        alloc.release(cell)
        assert alloc.request(headroom=2) != cell  # cannot absorb 2
        assert alloc.request(headroom=1) == cell  # still pooled for 1

    def test_capacity_in_whole_lines(self):
        alloc = BlockedAllocator(4, capacity=8)
        for _ in range(8):
            alloc.new_cell()
        with pytest.raises(CapacityExceededError):
            alloc.new_cell()

    def test_capacity_must_be_whole_lines(self):
        """A fractional-line capacity cannot be enforced exactly by a
        word-addressed machine — refuse it instead of over-allocating."""
        with pytest.raises(ValueError, match="whole number"):
            BlockedAllocator(8, capacity=12)
        with pytest.raises(ValueError, match="whole number"):
            BlockedAllocator(8, capacity=4)

    def test_validation(self):
        with pytest.raises(ValueError, match="block size"):
            BlockedAllocator(0)
        with pytest.raises(ValueError, match="strategy"):
            BlockedAllocator(4, "bogus")
        with pytest.raises(ValueError, match="w_max"):
            BlockedAllocator(4, w_max=1)


#: Tiny benchmarks exercising distinct shapes for the parity sweeps.
PARITY_BENCHMARKS = ("dec", "ctrl")


class TestParity:
    """`endurance`/`dac16` reproduce the pre-architecture compiler."""

    def test_endurance_arch_is_byte_identical(self):
        """Every preset plus a capped config: identical instruction
        streams, interfaces, and write-count distributions."""
        endurance = get_architecture("endurance")
        configs = list(PRESETS.values()) + [full_management(10)]
        for name in PARITY_BENCHMARKS:
            mig = build_benchmark(name, "tiny")
            for config in configs:
                default = compile_pipeline(mig, config)
                explicit = compile_pipeline(mig, config, arch=endurance)
                assert explicit.program.instructions == (
                    default.program.instructions
                )
                assert explicit.program.num_cells == default.program.num_cells
                assert explicit.program.pi_cells == default.program.pi_cells
                assert explicit.program.po_cells == default.program.po_cells
                assert explicit.program.write_counts() == (
                    default.program.write_counts()
                )

    def test_dac16_arch_matches_on_supported_configs(self):
        dac16 = get_architecture("dac16")
        for name in PARITY_BENCHMARKS:
            mig = build_benchmark(name, "tiny")
            for preset in ("naive", "dac16"):
                default = compile_pipeline(mig, PRESETS[preset])
                explicit = compile_pipeline(
                    mig, PRESETS[preset], arch=dac16
                )
                assert explicit.program.instructions == (
                    default.program.instructions
                )
                assert explicit.program.write_counts() == (
                    default.program.write_counts()
                )

    def test_table_artefacts_byte_identical(self):
        """Rendered Table I through an arch-pinned session equals the
        default session's rendering, byte for byte."""
        plain = Session(preset="tiny").run_matrix(
            PARITY_BENCHMARKS, verify=False
        )
        pinned = Session(preset="tiny", arch="endurance").run_matrix(
            PARITY_BENCHMARKS, verify=False
        )
        assert render_table1(pinned) == render_table1(plain)

    def test_run_matrix_arch_argument_parity(self):
        plain = run_matrix(PARITY_BENCHMARKS, ["naive"], preset="tiny")
        pinned = run_matrix(
            PARITY_BENCHMARKS, ["naive"], preset="tiny", arch="endurance"
        )
        for a, b in zip(plain, pinned):
            assert a.results["naive"].program.instructions == (
                b.results["naive"].program.instructions
            )

    def test_run_matrix_explicit_arch_beats_session(self):
        """An explicit arch argument overrides the session's machine,
        mirroring Flow.arch()."""
        session = Session(preset="tiny")  # ambient: endurance
        swept = run_matrix(
            ["dec"], ["naive"], preset="tiny", session=session,
            arch="blocked",
        )
        assert swept[0].results["naive"].program.num_cells % 8 == 0


class TestArchThroughFlow:
    def test_flow_override_beats_session(self):
        session = Session(preset="tiny", arch="endurance")
        result = (
            Flow.for_config("naive", session=session)
            .source("dec")
            .arch("blocked")
            .run()
        )
        assert result.architecture.name == "blocked"
        assert result.program.num_cells % 8 == 0

    def test_cache_is_keyed_by_architecture(self):
        session = Session(preset="tiny")
        flow = Flow.for_config("naive", session=session).source("dec")
        default = flow.run()
        blocked = (
            Flow.for_config("naive", session=session)
            .source("dec")
            .arch("blocked")
            .run()
        )
        # Distinct artefacts from one shared cache...
        assert blocked.program.num_cells != default.program.num_cells
        # ...and re-running either is a pure hit on its own entry.
        assert flow.run().stages["compile"].cached
        rerun = (
            Flow.for_config("naive", session=session)
            .source("dec")
            .arch("blocked")
            .run()
        )
        assert rerun.stages["compile"].cached
        assert rerun.program.num_cells == blocked.program.num_cells

    def test_disk_cache_keyed_by_architecture(self, tmp_path):
        cold = Session(preset="tiny", cache_dir=tmp_path, arch="blocked")
        first = (
            Flow.for_config("naive", session=cold).source("dec").run()
        )
        assert not first.stages["compile"].cached
        warm = Session(preset="tiny", cache_dir=tmp_path, arch="blocked")
        second = (
            Flow.for_config("naive", session=warm).source("dec").run()
        )
        assert second.stages["compile"].cached
        assert second.program.instructions == first.program.instructions
        # A different machine misses: entries never leak across archs.
        other = Session(preset="tiny", cache_dir=tmp_path, arch="dac16")
        third = (
            Flow.for_config("naive", session=other).source("dec").run()
        )
        assert not third.stages["compile"].cached

    def test_worker_processes_adopt_the_arch(self):
        """run_matrix(parallel=2) under a non-default architecture is
        identical to the serial evaluation (workers rebuild the machine
        from the session spec)."""
        serial = Session(preset="tiny", arch="blocked").run_matrix(
            PARITY_BENCHMARKS, ["naive", "ea-full"], verify=False
        )
        parallel = Session(
            preset="tiny", arch="blocked", parallel=2
        ).run_matrix(PARITY_BENCHMARKS, ["naive", "ea-full"], verify=False)
        for a, b in zip(serial, parallel):
            for label in ("naive", "ea-full"):
                assert a.results[label].program.instructions == (
                    b.results[label].program.instructions
                )
                assert a.results[label].program.num_cells == (
                    b.results[label].program.num_cells
                )


class TestArchitectureSweep:
    def test_sweep_covers_all_machines(self):
        session = Session(preset="tiny")
        points = architecture_sweep(
            "dec", configs=("naive", "ea-full"), session=session
        )
        assert {p.arch for p in points} == set(available_architectures())
        unsupported = [p for p in points if not p.supported]
        assert {(p.arch, p.config) for p in unsupported} == {
            ("dac16", "ea-full")
        }
        assert "wear counters" in unsupported[0].reason

    def test_sweep_accepts_explicit_mig(self):
        points = architecture_sweep(
            fig2_mig(),
            archs=("endurance",),
            configs=("naive",),
            session=Session(),
            verify=True,
        )
        assert len(points) == 1 and points[0].supported
        assert points[0].result.verified_patterns > 0

    def test_render_marks_gaps(self):
        session = Session(preset="tiny")
        points = architecture_sweep(
            "dec",
            archs=("dac16",),
            configs=("naive", "min-write"),
            session=session,
        )
        text = render_architecture_sweep(points)
        assert "unsupported pairs:" in text
        assert "min-write[1]" in text
