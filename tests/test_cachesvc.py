"""Tests for :mod:`repro.cachesvc` — the shared compile-cache service.

Layered cheapest-first: the in-memory tier and URL resolution (no
sockets), HTTP round-trips against an ephemeral-port server, the
single-flight protocol under threads, degradation of the client under a
dead server and injected ``cache_io`` faults, and finally the
cross-process properties the service exists for: a multi-process hammer
on one key compiles exactly once, and a killed lease holder never
wedges the key.
"""

import json
import multiprocessing
import os
import threading
import time
import urllib.request
from contextlib import contextmanager

import pytest

from repro.analysis.cli import main as cli_main
from repro.analysis.diskcache import (
    DiskCache,
    blob_digest,
    encode_entry,
    verify_blob,
)
from repro.cachesvc import (
    CACHE_URL_ENV_VAR,
    MemoryTier,
    RemoteCache,
    create_cache_server,
    resolve_cache_url,
)
from repro.flow import Session
from repro.resilience import events, faults


@pytest.fixture(autouse=True)
def _clean_environment(monkeypatch):
    monkeypatch.delenv(CACHE_URL_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
    monkeypatch.delenv(faults.LEDGER_ENV_VAR, raising=False)
    faults._CACHED = None
    events.clear()
    yield
    faults._CACHED = None
    events.clear()


def _arm(monkeypatch, tmp_path, spec):
    """Activate a $REPRO_FAULTS spec with a test-local fire ledger."""
    ledger = tmp_path / "fault-ledger"
    ledger.mkdir(exist_ok=True)
    monkeypatch.setenv(faults.FAULTS_ENV_VAR, spec)
    monkeypatch.setenv(faults.LEDGER_ENV_VAR, str(ledger))
    faults._CACHED = None
    return ledger


@contextmanager
def running_server(tmp_path, **kwargs):
    server = create_cache_server(
        port=0, root=str(tmp_path / "svc-root"), **kwargs
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.close()
        thread.join(timeout=5)


KEY = ("result", "adder", "tiny", "ea-full")
PAYLOAD = ({"program": b"\x00" * 64, "writes": [1, 2, 3]}, 64)


# ---------------------------------------------------------------------------
# memory tier


class TestMemoryTier:
    def test_round_trip_and_counters(self):
        tier = MemoryTier(1024)
        assert tier.get(("s", "k")) is None
        assert tier.put(("s", "k"), b"x" * 10)
        assert tier.get(("s", "k")) == b"x" * 10
        assert tier.contains(("s", "k"))
        stats = tier.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == 10
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_to_budget(self):
        tier = MemoryTier(100)
        tier.put(("s", "a"), b"a" * 40)
        tier.put(("s", "b"), b"b" * 40)
        tier.get(("s", "a"))  # refresh a: b is now least recent
        tier.put(("s", "c"), b"c" * 40)
        assert tier.contains(("s", "a"))
        assert not tier.contains(("s", "b"))
        assert tier.contains(("s", "c"))
        assert tier.stats()["evictions"] == 1
        assert tier.stats()["bytes"] <= 100

    def test_oversize_blob_refused(self):
        tier = MemoryTier(100)
        tier.put(("s", "a"), b"a" * 40)
        assert not tier.put(("s", "big"), b"x" * 200)
        assert tier.contains(("s", "a"))  # nothing was evicted for it

    def test_replacement_updates_byte_accounting(self):
        tier = MemoryTier(100)
        tier.put(("s", "a"), b"a" * 60)
        tier.put(("s", "a"), b"a" * 10)
        assert tier.stats()["bytes"] == 10
        assert tier.stats()["entries"] == 1


# ---------------------------------------------------------------------------
# URL resolution precedence


class TestResolveCacheUrl:
    def test_default_is_none(self):
        assert resolve_cache_url() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CACHE_URL_ENV_VAR, "http://env:1")
        assert resolve_cache_url("http://flag:2") == "http://flag:2"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(CACHE_URL_ENV_VAR, "http://env:1")
        assert resolve_cache_url(default="http://dflt:3") == "http://env:1"

    def test_fallback_to_default(self):
        assert resolve_cache_url(default="http://dflt:3") == "http://dflt:3"


# ---------------------------------------------------------------------------
# HTTP routes


class TestServerRoutes:
    def test_healthz_and_stats(self, tmp_path):
        with running_server(tmp_path) as server:
            with urllib.request.urlopen(server.url + "/healthz") as response:
                assert json.load(response)["status"] == "ok"
            with urllib.request.urlopen(server.url + "/stats") as response:
                stats = json.load(response)
            assert stats["service"] == "repro.cachesvc"
            assert stats["entries"] == 0
            assert set(stats["tiers"]) == {
                "memory_hits",
                "disk_hits",
                "single_flight_waits",
                "verify_rejects",
            }

    def test_round_trip_and_probe(self, tmp_path):
        with running_server(tmp_path) as server:
            client = RemoteCache(server.url)
            assert client.load(KEY) is None
            assert not client.contains(KEY)
            client.store(KEY, PAYLOAD)
            assert client.contains(KEY)
            assert client.load(KEY) == PAYLOAD
            # First load after put comes from the warm tier.
            assert client.tier_counters()["remote_memory_hits"] == 1

    def test_warm_tier_survives_disk_loss(self, tmp_path):
        """The memory tier answers even after the disk entry vanishes."""
        with running_server(tmp_path) as server:
            client = RemoteCache(server.url)
            client.store(KEY, PAYLOAD)
            server.disk.clear(all_versions=True)
            assert client.load(KEY) == PAYLOAD

    def test_disk_tier_feeds_memory(self, tmp_path):
        """Entries persisted before the server booted are served (and
        admitted to the warm tier on first touch)."""
        root = tmp_path / "svc-root"
        shard_cache = DiskCache(root)
        shard_cache.store(KEY, PAYLOAD)
        with running_server(tmp_path) as server:
            client = RemoteCache(
                server.url, fingerprint=shard_cache.fingerprint
            )
            assert client.load(KEY) == PAYLOAD
            assert client.tier_counters()["remote_disk_hits"] == 1
            assert client.load(KEY) == PAYLOAD
            assert client.tier_counters()["remote_memory_hits"] == 1

    def test_tampered_put_rejected(self, tmp_path):
        with running_server(tmp_path) as server:
            blob = encode_entry(repr(KEY), PAYLOAD)
            tampered = blob[:-4] + b"\xff\xff\xff\xff"
            assert not verify_blob(tampered)
            envelope = json.dumps({
                "key": repr(KEY),
                "shard": "0" * 16,
                # Honest digest of the tampered bytes: the structural
                # check must still refuse it.
                "sha256": blob_digest(tampered),
            }).encode()
            request = urllib.request.Request(
                server.url + "/entry",
                data=envelope + b"\n" + tampered,
                method="PUT",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request)
            assert info.value.code == 400
            assert server.counters["verify_rejects"] == 1
            assert server.stats_payload()["entries"] == 0

    def test_sha_mismatch_rejected(self, tmp_path):
        with running_server(tmp_path) as server:
            blob = encode_entry(repr(KEY), PAYLOAD)
            envelope = json.dumps({
                "key": repr(KEY),
                "shard": "0" * 16,
                "sha256": "0" * 64,
            }).encode()
            request = urllib.request.Request(
                server.url + "/entry",
                data=envelope + b"\n" + blob,
                method="PUT",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request)
            assert info.value.code == 400
            assert server.counters["verify_rejects"] == 1

    def test_manifest_round_trip(self, tmp_path):
        with running_server(tmp_path) as server:
            client = RemoteCache(server.url)
            client.store(KEY, PAYLOAD, manifest={"benchmark": "adder"})
            manifest = server.manifest_payload(repr(KEY), client.shard)
            assert manifest is not None
            assert manifest["benchmark"] == "adder"

    def test_unknown_route_404(self, tmp_path):
        with running_server(tmp_path) as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(server.url + "/nope")
            assert info.value.code == 404


# ---------------------------------------------------------------------------
# single-flight (threads)


class TestSingleFlight:
    def test_concurrent_identical_jobs_compile_once(self, tmp_path):
        with running_server(tmp_path) as server:
            compiles = []

            def worker(i):
                client = RemoteCache(server.url)
                result = client.load(KEY)
                if result is None:
                    with client.flight(KEY) as resolved:
                        if resolved is not None:
                            result = resolved
                        else:
                            compiles.append(i)
                            time.sleep(0.2)  # the "compile"
                            client.store(KEY, PAYLOAD)
                            result = PAYLOAD
                assert result == PAYLOAD

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(compiles) == 1
            stats = server.stats_payload()
            assert stats["duplicate_puts"] == 0
            # Everyone who raced ahead of the put blocked and was served
            # in-flight; stragglers hit the warm tier with a plain load.
            assert 1 <= stats["single_flight"]["served"] <= 5
            assert stats["single_flight"]["leases"] == 1

    def test_failed_holder_releases_to_next_waiter(self, tmp_path):
        with running_server(tmp_path) as server:
            order = []

            def failing_then_succeeding(i):
                client = RemoteCache(server.url)
                with client.flight(KEY) as resolved:
                    if resolved is not None:
                        order.append((i, "served"))
                        return
                    if not order:
                        order.append((i, "failed"))
                        raise RuntimeError("compile blew up")
                    order.append((i, "compiled"))
                    client.store(KEY, PAYLOAD)

            first = threading.Thread(
                target=lambda: pytest.raises(
                    RuntimeError, failing_then_succeeding, 0
                )
            )
            first.start()
            first.join(timeout=10)
            # The failed holder released its lease; the key is free.
            failing_then_succeeding(1)
            assert (1, "compiled") in order
            assert server.stats_payload()["entries"] == 1

    def test_wait_timeout_returns_timeout(self, tmp_path):
        with running_server(tmp_path) as server:
            kind, data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=0
            )
            assert kind == "lease"
            # A second flight with a tiny wait cannot get the held lease.
            kind, _data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=0.3
            )
            assert kind == "timeout"
            assert server.counters["flight_timeouts"] == 1

    def test_lease_break_on_dead_pid(self, tmp_path):
        with running_server(tmp_path) as server:
            # Burn a PID that is guaranteed dead by the probe time.
            probe = multiprocessing.Process(target=lambda: None)
            probe.start()
            probe.join()
            kind, _data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=0, pid=probe.pid
            )
            assert kind == "lease"
            kind, data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=5
            )
            assert kind == "lease"  # broken and re-granted, not timeout
            assert server.counters["lease_breaks"] == 1

    def test_lease_break_on_ttl_expiry(self, tmp_path):
        with running_server(tmp_path, lease_timeout=0.2) as server:
            kind, _data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=0
            )
            assert kind == "lease"
            kind, _data, _tier = server.fetch(
                repr(KEY), "0" * 16, flight=True, wait=5
            )
            assert kind == "lease"
            assert server.counters["lease_breaks"] == 1


# ---------------------------------------------------------------------------
# client degradation


class TestClientDegradation:
    def test_dead_server_falls_back_to_disk(self, tmp_path):
        client = RemoteCache(
            "http://127.0.0.1:9", root=tmp_path / "fallback"
        )
        assert client.load(KEY) is None
        client.store(KEY, PAYLOAD)
        assert client.load(KEY) == PAYLOAD
        assert client.contains(KEY)
        assert client.tier_counters()["remote_fallbacks"] >= 1
        assert events.snapshot(kind="cache_fallback")

    def test_fallback_artefact_byte_identical_to_direct_disk(self, tmp_path):
        client = RemoteCache(
            "http://127.0.0.1:9", root=tmp_path / "fallback"
        )
        client.store(KEY, PAYLOAD)
        direct = DiskCache(tmp_path / "direct")
        direct.store(KEY, PAYLOAD)
        via_client = client.entry_path(KEY).read_bytes()
        via_disk = direct.entry_path(KEY).read_bytes()
        assert via_client == via_disk

    def test_injected_cache_io_fault_degrades(
        self, tmp_path, monkeypatch
    ):
        _arm(monkeypatch, tmp_path, "cache_io:count=1")
        with running_server(tmp_path) as server:
            client = RemoteCache(server.url, root=tmp_path / "fallback")
            client.store(KEY, PAYLOAD)  # fault fires here -> fallback
            assert client.tier_counters()["remote_fallbacks"] == 1
            assert (tmp_path / "fallback").exists()
            fallback = DiskCache(tmp_path / "fallback")
            assert fallback.load(KEY) == PAYLOAD
            # The server never saw the put.
            assert server.stats_payload()["puts"] == 0
            assert events.snapshot(kind="cache_fallback")

    def test_server_recovers_after_cooldown(self, tmp_path):
        with running_server(tmp_path) as server:
            client = RemoteCache(
                server.url, root=tmp_path / "fallback", retry_seconds=0.0
            )
            client._mark_down(OSError("boom"), None)
            # retry_seconds=0: the next call goes straight back to the
            # server.
            client.store(KEY, PAYLOAD)
            assert server.stats_payload()["puts"] == 1

    def test_flight_degrades_to_leaseless_compute(self, tmp_path):
        client = RemoteCache("http://127.0.0.1:9", root=tmp_path / "fb")
        with client.flight(KEY) as resolved:
            assert resolved is None  # caller computes locally


# ---------------------------------------------------------------------------
# session / runner integration


class TestSessionIntegration:
    def test_session_builds_remote_cache(self, tmp_path):
        with running_server(tmp_path) as server:
            session = Session(
                cache_url=server.url, cache_dir=tmp_path / "local"
            )
            assert isinstance(session.cache.disk, RemoteCache)
            assert session.cache_url == server.url
            spec = session.spec()
            assert spec.cache_url == server.url
            rebuilt = Session.from_spec(spec)
            assert isinstance(rebuilt.cache.disk, RemoteCache)

    def test_cache_url_env_resolution(self, tmp_path, monkeypatch):
        with running_server(tmp_path) as server:
            monkeypatch.setenv(CACHE_URL_ENV_VAR, server.url)
            session = Session.from_env()
            assert isinstance(session.cache.disk, RemoteCache)
            assert session.cache_url == server.url

    def test_counters_always_carry_remote_keys(self):
        session = Session(preset="tiny")
        counters = session.cache.counters()
        for key in (
            "remote_memory_hits",
            "remote_disk_hits",
            "remote_waits",
            "remote_fallbacks",
        ):
            assert counters[key] == 0

    def test_flow_compiles_through_server(self, tmp_path):
        with running_server(tmp_path) as server:
            session = Session(preset="tiny", cache_url=server.url)
            result = session.flow("naive").source("adder").run().compilation
            assert result.num_instructions > 0
            stats = server.stats_payload()
            assert stats["puts"] > 0
            # Warm rerun from a fresh session: served, not recompiled.
            warm = Session(preset="tiny", cache_url=server.url)
            warm_result = (
                warm.flow("naive").source("adder").run().compilation
            )
            assert warm_result.num_instructions == result.num_instructions
            remote = warm.cache.disk
            assert remote.tier_counters()["remote_memory_hits"] > 0


# ---------------------------------------------------------------------------
# cross-process properties


def _hammer_worker(url, root, results):
    """One contender: miss -> flight -> compile or adopt."""
    client = RemoteCache(url, root=root)
    result = client.load(KEY)
    compiled = 0
    if result is None:
        with client.flight(KEY) as resolved:
            if resolved is not None:
                result = resolved
            else:
                compiled = 1
                time.sleep(0.3)  # the "compile" other processes must skip
                client.store(KEY, PAYLOAD)
                result = PAYLOAD
    results.put((os.getpid(), compiled, result == PAYLOAD))


def _lease_and_die(url):
    """Grab the key's lease, then die without storing or releasing."""
    client = RemoteCache(url)
    status, data, _headers = client._request(
        "GET",
        "/entry",
        query={
            "key": repr(KEY),
            "shard": client.shard,
            "flight": "1",
            "wait": "0",
            "pid": str(os.getpid()),
        },
    )
    assert status == 404 and b"lease" in data
    os._exit(0)  # no release, no store: the holder is simply gone


class TestCrossProcess:
    def test_hammer_compiles_exactly_once(self, tmp_path):
        context = multiprocessing.get_context("fork")
        with running_server(tmp_path) as server:
            results = context.Queue()
            workers = [
                context.Process(
                    target=_hammer_worker,
                    args=(server.url, str(tmp_path / "fallback"), results),
                )
                for _ in range(4)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=30)
            outcomes = [results.get(timeout=5) for _ in workers]
            compiles = sum(compiled for _pid, compiled, _ok in outcomes)
            assert compiles == 1, outcomes
            assert all(ok for _pid, _compiled, ok in outcomes)
            stats = server.stats_payload()
            assert stats["duplicate_puts"] == 0
            assert stats["single_flight"]["breaks"] == 0

    def test_killed_holder_breaks_lease(self, tmp_path):
        context = multiprocessing.get_context("fork")
        with running_server(tmp_path) as server:
            holder = context.Process(
                target=_lease_and_die, args=(server.url,)
            )
            holder.start()
            holder.join(timeout=10)
            assert holder.exitcode == 0
            # The dead holder's lease must be broken and re-granted well
            # before the 600 s TTL (the PID probe catches it).
            client = RemoteCache(server.url)
            start = time.monotonic()
            with client.flight(KEY) as resolved:
                assert resolved is None  # we now hold the lease
                client.store(KEY, PAYLOAD)
            assert time.monotonic() - start < 30
            assert server.counters["lease_breaks"] == 1
            assert client.load(KEY) == PAYLOAD

    def test_parallel_matrix_matches_serial(self, tmp_path):
        """4 workers x one shared server == the serial lockfile path."""
        serial = Session(
            preset="tiny", cache_dir=tmp_path / "serial"
        ).run_matrix(["adder", "bar"], ["naive"], verify=False)
        with running_server(tmp_path) as server:
            shared = Session(
                preset="tiny",
                cache_url=server.url,
                cache_dir=tmp_path / "svc-root",
            ).run_matrix(["adder", "bar"], ["naive"], parallel=4,
                         verify=False)
            stats = server.stats_payload()
        assert stats["duplicate_puts"] == 0

        def signature(evaluations):
            return [
                {
                    config: (
                        res.num_instructions,
                        res.num_rrams,
                        tuple(res.program.write_counts()),
                    )
                    for config, res in ev.results.items()
                }
                for ev in evaluations
            ]

        assert signature(shared) == signature(serial)


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_cachesvc_stats_without_url(self, capsys):
        assert cli_main(["cachesvc", "stats"]) == 2
        assert "REPRO_CACHE_URL" in capsys.readouterr().err

    def test_cachesvc_stats_json(self, tmp_path, capsys):
        with running_server(tmp_path) as server:
            RemoteCache(server.url).store(KEY, PAYLOAD)
            assert cli_main(
                ["cachesvc", "stats", "--url", server.url, "--json"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["service"] == "repro.cachesvc"
            assert payload["puts"] == 1

    def test_cachesvc_stats_human(self, tmp_path, capsys):
        with running_server(tmp_path) as server:
            assert cli_main(
                ["cachesvc", "stats", "--url", server.url]
            ) == 0
            out = capsys.readouterr().out
            assert "warm tier" in out
            assert "duplicate compiles" in out

    def test_cache_stats_grows_tiers_section(self, tmp_path, capsys):
        with running_server(tmp_path) as server:
            client = RemoteCache(server.url)
            client.store(KEY, PAYLOAD)
            client.load(KEY)
            assert cli_main([
                "cache", "stats",
                "--cache-dir", str(tmp_path / "svc-root"),
                "--cache-url", server.url,
                "--json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["tiers"]["memory_hits"] == 1
            assert payload["server"]["service"] == "repro.cachesvc"

    def test_cache_stats_unreachable_server_warns(self, tmp_path, capsys):
        assert cli_main([
            "cache", "stats",
            "--cache-dir", str(tmp_path / "cache"),
            "--cache-url", "http://127.0.0.1:9",
        ]) == 0
        captured = capsys.readouterr()
        assert "unreachable" in captured.err
        assert "tiers" not in captured.out
