"""Tests for the parameter-sweep utilities."""

import pytest

from repro.analysis.sweeps import (
    SweepPoint,
    by_config,
    render_sweep,
    scaling_exponent,
    sweep_widths,
)
from repro.synth.arithmetic import build_adder


@pytest.fixture(scope="module")
def points():
    return sweep_widths(lambda w: build_adder(width=w), [3, 6])


class TestSweep:
    def test_point_grid_complete(self, points):
        assert len(points) == 2 * 3  # widths x default configs
        assert {p.config for p in points} == {"naive", "ea-full", "wmax20"}

    def test_by_config_ordering(self, points):
        naive = by_config(points, "naive")
        assert [p.parameter for p in naive] == [3, 6]

    def test_writes_per_gate(self, points):
        for p in points:
            assert p.writes_per_gate == p.instructions / p.gates

    def test_capped_points_respect_cap(self, points):
        for p in by_config(points, "wmax20"):
            assert p.max_writes <= 20

    def test_render(self, points):
        text = render_sweep(points)
        assert "naive" in text and "wmax20" in text
        assert text.count("\n") == len(points)

    def test_custom_configs(self):
        from repro.core.manager import PRESETS

        pts = sweep_widths(
            lambda w: build_adder(width=w), [3],
            configs={"only": PRESETS["min-write"]},
        )
        assert len(pts) == 1
        assert pts[0].config == "only"


class TestScalingExponent:
    def test_linear_series(self):
        pts = [
            SweepPoint(w, "c", w, w * 10, w, 1.0, w, 100)
            for w in (2, 4, 8, 16)
        ]
        assert abs(scaling_exponent(pts, "max_writes") - 1.0) < 1e-9
        assert abs(scaling_exponent(pts, "instructions") - 1.0) < 1e-9

    def test_quadratic_series(self):
        pts = [
            SweepPoint(w, "c", w, w * w, w, 1.0, w * w, 100)
            for w in (2, 4, 8)
        ]
        assert abs(scaling_exponent(pts, "instructions") - 2.0) < 1e-9

    def test_flat_series(self):
        pts = [SweepPoint(w, "c", w, 5, w, 1.0, 7, 100) for w in (2, 4, 8)]
        assert abs(scaling_exponent(pts, "max_writes")) < 1e-9

    def test_single_parameter_rejected(self):
        pts = [SweepPoint(4, "c", 1, 1, 1, 1.0, 1, 1)]
        with pytest.raises(ValueError):
            scaling_exponent(pts, "max_writes")
