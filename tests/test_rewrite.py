"""Tests for the rewrite engine and the two rewriting scripts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import (
    ALGORITHM1_STEPS,
    ALGORITHM2_STEPS,
    rewrite,
    rewrite_dac16,
    rewrite_endurance_aware,
)
from repro.mig.rewrite import apply_script, rebuild
from repro.mig.simulate import equivalent
from repro.synth.arithmetic import build_adder
from repro.synth.control import build_dec
from .conftest import make_random_mig


class TestEngine:
    def test_rebuild_identity(self, small_random_mig):
        out = rebuild(small_random_mig)
        assert equivalent(small_random_mig, out)
        assert out.num_pis == small_random_mig.num_pis
        assert out.num_pos == small_random_mig.num_pos

    def test_rebuild_preserves_names(self, tiny_adder):
        out = rebuild(tiny_adder)
        assert out.pi_name(0) == tiny_adder.pi_name(0)
        assert out.po_name(0) == tiny_adder.po_name(0)

    def test_rebuild_drops_dead_nodes(self):
        mig = make_random_mig(5, 30, seed=2)
        # every live gate of the rebuild is reachable
        out = rebuild(mig)
        assert out.num_live_gates() == out.num_gates

    def test_apply_script_unknown_pass(self, small_random_mig):
        with pytest.raises(KeyError):
            apply_script(small_random_mig, ["M", "nope"])

    def test_apply_script_cycles(self, small_random_mig):
        one = apply_script(small_random_mig, ["M", "I_rl_1_3"], cycles=1)
        three = apply_script(small_random_mig, ["M", "I_rl_1_3"], cycles=3)
        assert equivalent(one, three)


class TestScripts:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_algorithm1_preserves_function(self, seed):
        mig = make_random_mig(6, 50, seed=seed)
        assert equivalent(mig, rewrite_dac16(mig, effort=2))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_algorithm2_preserves_function(self, seed):
        mig = make_random_mig(6, 50, seed=seed)
        assert equivalent(mig, rewrite_endurance_aware(mig, effort=2))

    def test_scripts_differ_as_specified(self):
        # Algorithm 2 drops Psi.C and interleaves inverter propagation.
        assert "Psi_C" in ALGORITHM1_STEPS
        assert "Psi_C" not in ALGORITHM2_STEPS
        assert ALGORITHM2_STEPS.count("I_rl_1_3") == 2
        assert ALGORITHM2_STEPS[-1] == "I_rl"

    def test_rewrite_none_is_cleanup(self, small_random_mig):
        out = rewrite(small_random_mig, "none")
        assert equivalent(small_random_mig, out)
        assert out.num_gates == out.num_live_gates()

    def test_rewrite_unknown_script(self, small_random_mig):
        with pytest.raises(ValueError):
            rewrite(small_random_mig, "bogus")

    def test_rewriting_reduces_elaborated_adder(self):
        mig = build_adder(width=8, elaborated=True)
        before = mig.num_live_gates()
        after1 = rewrite_dac16(mig).num_live_gates()
        after2 = rewrite_endurance_aware(mig).num_live_gates()
        assert after1 < before
        assert after2 < before

    def test_rewriting_equivalence_on_benchmarks(self):
        for mig in (build_adder(width=4), build_dec(sel_bits=3)):
            assert equivalent(mig, rewrite_dac16(mig, effort=2))
            assert equivalent(mig, rewrite_endurance_aware(mig, effort=2))

    def test_algorithm2_reduces_complement_violations(self):
        """Algorithm 2 must leave no gate with 2+ variable complements
        (its final passes normalise them)."""
        mig = make_random_mig(6, 60, seed=123)
        out = rewrite_endurance_aware(mig, effort=1)
        hist = out.complement_histogram()
        # buckets 2 and 3 may only contain nodes whose complements are
        # constants; recount with the variable-only rule:
        for node in out.live_gates():
            count = sum(1 for s in out.fanins(node) if s > 1 and s & 1)
            assert count <= 1

    def test_effort_zero_is_identity_cleanup(self, small_random_mig):
        out = rewrite_dac16(small_random_mig, effort=0)
        assert equivalent(small_random_mig, out)


class TestRebuildContext:
    def test_translated_raises_for_untranslated_node(self):
        from repro.mig.rewrite import rebuild

        seen = {}

        def transform(new, ctx, node, children):
            if "probe" not in seen:
                seen["probe"] = True
                # the node currently being rebuilt has no translation yet
                with pytest.raises(KeyError):
                    ctx.translated(node << 1)
            return new.add_maj(*children)

        mig = make_random_mig(4, 10, seed=2)
        out = rebuild(mig, transform)
        assert seen["probe"]
        from repro.mig.simulate import equivalent

        assert equivalent(mig, out)
