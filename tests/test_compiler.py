"""Tests for the MIG-to-RM3 compiler: cost model, invariants, correctness.

The cost model cases follow Section III of the paper: an "ideal" node
(one complemented fanin, one overwritable destination) is a single RM3;
each complement/fanout violation adds exactly two instructions and one
device.
"""

from hypothesis import given, settings, strategies as st

from repro.core.selection import make_selection
from repro.mig.graph import Mig
from repro.mig.signal import CONST0, CONST1, complement
from repro.plim.compiler import PlimCompiler
from repro.plim.verify import cross_check_truth_tables, verify_program
from .conftest import make_random_mig


def compile_mig(mig, **kwargs):
    return PlimCompiler(**kwargs).compile(mig)


def count_node_instructions(mig):
    """#I of a single-gate MIG whose PO is that gate, uncomplemented."""
    program = compile_mig(mig)
    verify_program(program, mig)
    return program.num_instructions


class TestCostModel:
    def _single_node(self, complements, fanouts):
        """One majority over three PIs; `complements[i]` inverts edge i,
        `fanouts[i]` adds an extra consumer to pin PI i."""
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(3)]
        extra = mig.add_pi("extra")
        ops = [
            complement(s) if c else s for s, c in zip(pis, complements)
        ]
        node = mig.add_maj(*ops)
        mig.add_po(node, "f")
        for s, pinned in zip(pis, fanouts):
            if pinned:
                mig.add_po(mig.add_maj(s, extra, CONST0), f"pin{s}")
        return mig

    def test_ideal_node_single_instruction(self):
        # one complemented fanin, destination and P free
        mig = self._single_node([True, False, False], [False, False, False])
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 1

    def test_zero_complements_needs_q_inversion(self):
        # no complemented fanin, no constant: +2 instructions
        mig = self._single_node([False, False, False], [False, False, False])
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 3

    def test_and_node_is_free_via_constant(self):
        # <a b 0>: Q takes the constant, Z overwrites a fanin
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_and(a, b), "f")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 1

    def test_or_node_is_free_via_constant(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_or(a, b), "f")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 1

    def test_all_fanouts_blocked_needs_copy(self):
        # one complemented fanin but both other fanins multi-fanout:
        # +2 (copy) -> 3 instructions for the node, plus 2 pin gates
        mig = self._single_node([True, False, False], [False, True, True])
        program = compile_mig(mig)
        verify_program(program, mig)
        # pins are ANDs (1 each); the node pays 1 + 2
        assert program.num_instructions == 2 + 3

    def test_two_complements_cost(self):
        # Q free (first complement), P inversion (+2), Z direct
        mig = self._single_node([True, True, False], [False, False, False])
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 3

    def test_three_complements_cost(self):
        # Q free, P inversion (+2), Z copy-invert (+2)
        mig = self._single_node([True, True, True], [False, False, False])
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 5

    def test_complemented_po_costs_two(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.add_and(a, b)
        mig.add_po(complement(f), "nf")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 1 + 2

    def test_constant_po_costs_one(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(CONST1, "one")
        mig.add_po(CONST0, "zero")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 2

    def test_shared_constant_pos(self):
        mig = Mig()
        mig.add_pi("a")
        mig.add_po(CONST1, "one_a")
        mig.add_po(CONST1, "one_b")
        program = compile_mig(mig)
        assert program.num_instructions == 1
        assert program.po_cells[0] == program.po_cells[1]

    def test_pi_as_po_uses_pi_cell(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(a, "f")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 0
        assert program.po_cells == [program.pi_cells[0]]

    def test_duplicate_complemented_po_shares_inversion(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.add_and(a, b)
        mig.add_po(complement(f), "nf1")
        mig.add_po(complement(f), "nf2")
        program = compile_mig(mig)
        verify_program(program, mig)
        assert program.num_instructions == 3  # AND + one shared inversion
        assert program.po_cells[0] == program.po_cells[1]


class TestInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_min_write_changes_neither_instructions_nor_rrams(self, seed):
        """Stated explicitly in Section IV of the paper."""
        mig = make_random_mig(6, 50, seed=seed)
        naive = compile_mig(mig, allocation="naive")
        minw = compile_mig(mig, allocation="min_write")
        assert naive.num_instructions == minw.num_instructions
        assert naive.num_rrams == minw.num_rrams

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_all_selections_verify(self, seed):
        mig = make_random_mig(6, 40, seed=seed)
        for name in ("topo", "dac16", "endurance"):
            sel = None if name == "topo" else make_selection(name)
            program = compile_mig(mig, selection=sel)
            verify_program(program, mig, patterns=64)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_write_cap_respected(self, seed):
        mig = make_random_mig(6, 50, seed=seed)
        for cap in (3, 5, 10):
            program = compile_mig(
                mig, allocation="min_write", w_max=cap
            )
            verify_program(program, mig, patterns=64)
            assert max(program.write_counts()) <= cap

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_tighter_cap_never_cheaper(self, seed):
        mig = make_random_mig(6, 50, seed=seed)
        loose = compile_mig(mig, allocation="min_write", w_max=20)
        tight = compile_mig(mig, allocation="min_write", w_max=3)
        assert tight.num_rrams >= loose.num_rrams

    def test_pi_overwrite_flag(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_and(a, b), "f")
        reuse = compile_mig(mig, allow_pi_overwrite=True)
        fresh = compile_mig(mig, allow_pi_overwrite=False)
        verify_program(reuse, mig)
        verify_program(fresh, mig)
        assert reuse.num_rrams == 2  # destination overwrites an input
        assert fresh.num_rrams == 3  # input devices preserved
        assert fresh.num_instructions == reuse.num_instructions + 2

    def test_po_complement_releases_dead_source(self):
        # a node used only by a complemented PO frees its device
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.add_and(a, b)
        mig.add_po(complement(f), "nf")
        program = compile_mig(mig)
        verify_program(program, mig)


class TestEndToEnd:
    def test_exhaustive_cross_check_small(self):
        mig = make_random_mig(6, 30, seed=99, num_pos=4)
        program = compile_mig(mig, allocation="min_write", w_max=5)
        assert cross_check_truth_tables(program, mig) is None

    def test_empty_graph(self):
        mig = Mig()
        mig.add_pi("a")
        program = compile_mig(mig)
        assert program.num_instructions == 0
        assert program.num_rrams == 1  # the input device

    def test_no_strash_graph_compiles(self):
        mig = make_random_mig(5, 30, seed=5, use_strash=False)
        program = compile_mig(mig)
        verify_program(program, mig, patterns=64)

    def test_scheduler_covers_all_gates(self, tiny_adder):
        program = compile_mig(tiny_adder)
        verify_program(program, tiny_adder)
